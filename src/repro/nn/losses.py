"""Loss functions: value plus gradient with respect to model output."""

from __future__ import annotations

import numpy as np

from . import functional as F

__all__ = ["SoftmaxCrossEntropy", "MSELoss"]


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy against integer labels, fused for stability.

    ``forward(logits, labels)`` returns the mean loss; ``backward()``
    returns ``d loss / d logits`` for the same batch.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (n, classes), got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
            )
        logp = F.log_softmax(logits, axis=1)
        self._probs = np.exp(logp)
        self._labels = labels
        return float(-logp[np.arange(labels.shape[0]), labels].mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        n = self._labels.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        grad /= n
        return grad

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error, mean over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)
