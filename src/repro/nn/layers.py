"""Neural-network layers with hand-derived backpropagation.

Each layer follows a minimal protocol:

* ``forward(x, training=True)`` computes the output and caches whatever the
  backward pass needs;
* ``backward(grad_out)`` returns the gradient with respect to the layer
  input and fills ``self.grads`` (same keys as ``self.params``) with the
  parameter gradients for the *last* forward batch.

Gradients are *written*, never accumulated, so one forward/backward pair
per batch is the contract (matching how the FL workers use the substrate).
All parameters are float64 ``ndarray``s stored in ``self.params`` so the
federated layer can flatten them into the gradient vectors that the FIFL
mechanism consumes.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import initializers as init

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Flatten",
    "Dropout",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm",
]


class Layer:
    """Base class: a differentiable, optionally parameterized transform.

    ``params`` are trainable (they appear in the flat parameter/gradient
    vectors the FL protocol ships); ``buffers`` are non-trainable state
    (BatchNorm running statistics) that federated averaging synchronizes
    out-of-band, mirroring FedAvg-BN practice.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.buffers: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def num_params(self) -> int:
        """Total number of scalar parameters in this layer."""
        return sum(int(p.size) for p in self.params.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(params={self.num_params})"


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Input ``(n, in_features)``, output ``(n, out_features)``.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.params["W"] = init.he_normal(rng, (in_features, out_features), in_features)
        self.params["b"] = init.zeros((out_features,))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (n, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.grads["W"] = self._x.T @ grad_out
        self.grads["b"] = grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._mask = x > 0.0
            return np.where(self._mask, x, 0.0)
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return np.where(self._mask, grad_out, 0.0)


class LeakyReLU(Layer):
    """Leaky rectifier: ``x`` if positive else ``alpha * x``."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0.0
        if training:
            self._mask = mask
        return np.where(mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return np.where(self._mask, grad_out, self.alpha * grad_out)


class Tanh(Layer):
    """Hyperbolic tangent (the original LeNet's nonlinearity)."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad_out * (1.0 - self._out**2)


class Flatten(Layer):
    """Collapse all non-batch dimensions: ``(n, ...) -> (n, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Conv2d(Layer):
    """2-D convolution over ``(n, c, h, w)`` input via im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("Conv2d dims must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.params["W"] = init.he_normal(
            rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in
        )
        self.params["b"] = init.zeros((out_channels,))
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (n, {self.in_channels}, h, w), got {x.shape}"
            )
        n, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        oh = F.conv_out_size(h, k, s, p)
        ow = F.conv_out_size(w, k, s, p)
        cols = F.im2col(x, k, k, s, p)  # (n*oh*ow, c*k*k)
        w_mat = self.params["W"].reshape(self.out_channels, -1)  # (oc, c*k*k)
        out = cols @ w_mat.T + self.params["b"]  # (n*oh*ow, oc)
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cols = cols
            self._x_shape = x.shape
        else:
            self._cols = None
            self._x_shape = None
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, oc, oh, ow = grad_out.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, oc)  # (n*oh*ow, oc)
        w_mat = self.params["W"].reshape(oc, -1)
        self.grads["W"] = (grad_mat.T @ self._cols).reshape(self.params["W"].shape)
        self.grads["b"] = grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat  # (n*oh*ow, c*k*k)
        return F.col2im(grad_cols, self._x_shape, k, k, s, p)


class MaxPool2d(Layer):
    """Max pooling with square window; window == stride (non-overlapping)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        oh = F.conv_out_size(h, k, s, 0)
        ow = F.conv_out_size(w, k, s, 0)
        cols = F.im2col(x, k, k, s, 0).reshape(n * oh * ow, c, k * k)
        # Track per-window argmax for routing the gradient back.
        arg = cols.argmax(axis=2)  # (n*oh*ow, c)
        out = np.take_along_axis(cols, arg[:, :, None], axis=2)[:, :, 0]
        out = out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)
        if training:
            self._argmax = arg
            self._x_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, oh, ow = grad_out.shape
        k, s = self.kernel_size, self.stride
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, c)
        cols = np.zeros((n * oh * ow, c, k * k), dtype=grad_out.dtype)
        np.put_along_axis(cols, self._argmax[:, :, None], grad_flat[:, :, None], axis=2)
        cols = cols.reshape(n * oh * ow, c * k * k)
        return F.col2im(cols, self._x_shape, k, k, s, 0)


class AvgPool2d(Layer):
    """Average pooling with square window; window == stride by default.

    The original LeNet-5 used average (sub-sampling) pooling; provided for
    faithful variants alongside :class:`MaxPool2d`.
    """

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        oh = F.conv_out_size(h, k, s, 0)
        ow = F.conv_out_size(w, k, s, 0)
        cols = F.im2col(x, k, k, s, 0).reshape(n * oh * ow, c, k * k)
        out = cols.mean(axis=2).reshape(n, oh, ow, c).transpose(0, 3, 1, 2)
        if training:
            self._x_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, oh, ow = grad_out.shape
        k, s = self.kernel_size, self.stride
        scale = 1.0 / (k * k)
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, c, 1)
        cols = np.broadcast_to(grad_flat * scale, (n * oh * ow, c, k * k))
        cols = cols.reshape(n * oh * ow, c * k * k)
        return F.col2im(cols, self._x_shape, k, k, s, 0)


class GlobalAvgPool2d(Layer):
    """Average over spatial dims: ``(n, c, h, w) -> (n, c)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        scale = 1.0 / (h * w)
        return np.broadcast_to(
            grad_out[:, :, None, None] * scale, self._x_shape
        ).copy()


class BatchNorm(Layer):
    """Batch normalization over the channel axis.

    Works for both 2-D ``(n, features)`` and 4-D ``(n, c, h, w)`` input; in
    the 4-D case statistics are computed per channel over ``(n, h, w)``.
    Running statistics are used at evaluation time.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must be in (0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(num_features)
        self.params["beta"] = np.zeros(num_features)
        self.buffers["running_mean"] = np.zeros(num_features)
        self.buffers["running_var"] = np.ones(num_features)
        self._cache: tuple | None = None

    @property
    def running_mean(self) -> np.ndarray:
        return self.buffers["running_mean"]

    @running_mean.setter
    def running_mean(self, value: np.ndarray) -> None:
        self.buffers["running_mean"] = value

    @property
    def running_var(self) -> np.ndarray:
        return self.buffers["running_var"]

    @running_var.setter
    def running_var(self, value: np.ndarray) -> None:
        self.buffers["running_var"] = value

    def _moveaxis(self, x: np.ndarray) -> np.ndarray:
        """Reshape input to (m, num_features) rows for stats."""
        if x.ndim == 2:
            return x
        if x.ndim == 4:
            return x.transpose(0, 2, 3, 1).reshape(-1, self.num_features)
        raise ValueError(f"BatchNorm supports 2-D or 4-D input, got {x.ndim}-D")

    def _restore(self, rows: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        if len(shape) == 2:
            return rows
        n, c, h, w = shape
        return rows.reshape(n, h, w, c).transpose(0, 3, 1, 2)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        rows = self._moveaxis(x)
        if rows.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {rows.shape[1]}"
            )
        if training:
            mean = rows.mean(axis=0)
            var = rows.var(axis=0)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (rows - mean) * inv_std
        out = xhat * self.params["gamma"] + self.params["beta"]
        if training:
            self._cache = (xhat, inv_std, x.shape)
        return self._restore(out, x.shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        xhat, inv_std, shape = self._cache
        grad_rows = self._moveaxis(grad_out)
        m = grad_rows.shape[0]
        self.grads["gamma"] = (grad_rows * xhat).sum(axis=0)
        self.grads["beta"] = grad_rows.sum(axis=0)
        # Standard batchnorm input gradient.
        g = grad_rows * self.params["gamma"]
        grad_in = (
            inv_std
            / m
            * (m * g - g.sum(axis=0) - xhat * (g * xhat).sum(axis=0))
        )
        return self._restore(grad_in, shape)
