"""Model containers and parameter-vector utilities.

The federated-learning layer treats a model as a *flat float64 vector* of
parameters and gradients — that vector is exactly what workers upload and
what the FIFL mechanism scores. :class:`Sequential` therefore exposes
``get_flat_params`` / ``set_flat_params`` / ``get_flat_grads`` with a
stable, deterministic ordering (layer order, then sorted param name).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from .layers import Layer

__all__ = ["Sequential", "Residual"]


class Residual(Layer):
    """Residual wrapper: ``y = F(x) + shortcut(x)``.

    ``body`` and optional ``shortcut`` are sequences of layers; when the
    shortcut is empty the identity is used (shapes must then match).
    This is the building block for the paper's ResNet-on-CIFAR10 setup.
    """

    def __init__(self, body: Iterable[Layer], shortcut: Iterable[Layer] = ()):
        super().__init__()
        self.body = list(body)
        self.shortcut = list(shortcut)
        if not self.body:
            raise ValueError("Residual body must contain at least one layer")

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.body:
            out = layer.forward(out, training=training)
        sc = x
        for layer in self.shortcut:
            sc = layer.forward(sc, training=training)
        if out.shape != sc.shape:
            raise ValueError(
                f"residual branch shapes differ: body {out.shape} vs "
                f"shortcut {sc.shape}"
            )
        return out + sc

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_body = grad_out
        for layer in reversed(self.body):
            grad_body = layer.backward(grad_body)
        grad_sc = grad_out
        for layer in reversed(self.shortcut):
            grad_sc = layer.backward(grad_sc)
        return grad_body + grad_sc

    def _sublayers(self) -> Iterator[Layer]:
        yield from self.body
        yield from self.shortcut


def _walk(layers: Iterable[Layer]) -> Iterator[Layer]:
    """Depth-first iteration over layers, descending into containers."""
    for layer in layers:
        if isinstance(layer, Residual):
            yield from _walk(layer._sublayers())
        else:
            yield layer


class Sequential:
    """Ordered stack of layers with flat parameter-vector access."""

    def __init__(self, layers: Iterable[Layer]):
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    # -- forward / backward -------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (no caches, eval statistics)."""
        return self.forward(x, training=False)

    # -- parameter bookkeeping ----------------------------------------------

    def _param_layers(self) -> Iterator[Layer]:
        for layer in _walk(self.layers):
            if layer.params:
                yield layer

    def named_params(self) -> Iterator[tuple[str, np.ndarray]]:
        """Stable (name, array) iteration across all parameterized layers."""
        for idx, layer in enumerate(self._param_layers()):
            for name in sorted(layer.params):
                yield f"{idx}.{type(layer).__name__}.{name}", layer.params[name]

    @property
    def num_params(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for _, p in self.named_params())

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameters into one float64 vector (copy)."""
        chunks = [p.ravel() for _, p in self.named_params()]
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks).astype(np.float64, copy=False)

    def set_flat_params(self, vec: np.ndarray) -> None:
        """Load parameters from a flat vector (inverse of get_flat_params)."""
        vec = np.asarray(vec, dtype=np.float64)
        if vec.ndim != 1 or vec.size != self.num_params:
            raise ValueError(
                f"expected flat vector of size {self.num_params}, got {vec.shape}"
            )
        offset = 0
        for layer in self._param_layers():
            for name in sorted(layer.params):
                p = layer.params[name]
                layer.params[name] = vec[offset : offset + p.size].reshape(p.shape).copy()
                offset += p.size

    # -- non-trainable buffers (BatchNorm running stats) -----------------------

    def _buffer_layers(self) -> Iterator[Layer]:
        for layer in _walk(self.layers):
            if layer.buffers:
                yield layer

    @property
    def num_buffer_values(self) -> int:
        """Total scalar count of non-trainable buffers."""
        return sum(
            b.size for layer in self._buffer_layers() for b in layer.buffers.values()
        )

    def get_flat_buffers(self) -> np.ndarray:
        """Concatenate all buffers (running stats) into one vector (copy)."""
        chunks = [
            layer.buffers[name].ravel()
            for layer in self._buffer_layers()
            for name in sorted(layer.buffers)
        ]
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks).astype(np.float64, copy=False)

    def set_flat_buffers(self, vec: np.ndarray) -> None:
        """Load buffers from a flat vector (inverse of get_flat_buffers)."""
        vec = np.asarray(vec, dtype=np.float64)
        if vec.ndim != 1 or vec.size != self.num_buffer_values:
            raise ValueError(
                f"expected buffer vector of size {self.num_buffer_values}, "
                f"got {vec.shape}"
            )
        offset = 0
        for layer in self._buffer_layers():
            for name in sorted(layer.buffers):
                b = layer.buffers[name]
                layer.buffers[name] = (
                    vec[offset : offset + b.size].reshape(b.shape).copy()
                )
                offset += b.size

    def get_flat_grads(self) -> np.ndarray:
        """Concatenate parameter gradients from the last backward pass."""
        chunks: list[np.ndarray] = []
        for layer in self._param_layers():
            for name in sorted(layer.params):
                if name not in layer.grads:
                    raise RuntimeError(
                        f"{type(layer).__name__}.{name} has no gradient; "
                        "run forward(training=True) + backward first"
                    )
                chunks.append(layer.grads[name].ravel())
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks).astype(np.float64, copy=False)

    def apply_flat_grads(self, grad_vec: np.ndarray, lr: float) -> None:
        """In-place SGD step ``theta -= lr * grad`` from a flat gradient."""
        grad_vec = np.asarray(grad_vec, dtype=np.float64)
        if grad_vec.size != self.num_params:
            raise ValueError(
                f"gradient vector size {grad_vec.size} != {self.num_params}"
            )
        offset = 0
        for layer in self._param_layers():
            for name in sorted(layer.params):
                p = layer.params[name]
                p -= lr * grad_vec[offset : offset + p.size].reshape(p.shape)
                offset += p.size

    def zero_grads(self) -> None:
        """Drop cached gradients (fresh round)."""
        for layer in _walk(self.layers):
            layer.grads.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"Sequential([{inner}], params={self.num_params})"
