"""Pure-NumPy neural-network substrate (the paper's PyTorch substitution).

Provides layers with hand-derived backprop, model containers exposing flat
parameter/gradient vectors (the representation federated workers upload),
losses, optimizers, reference architectures (LeNet, mini-ResNet), and a
finite-difference gradient checker.
"""

from . import functional, initializers
from .fleet import (
    FleetSequential,
    FleetSoftmaxCrossEntropy,
    fleet_signature,
)
from .gradcheck import analytic_gradient, max_relative_error, numerical_gradient
from .layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Layer,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Tanh,
)
from .losses import MSELoss, SoftmaxCrossEntropy
from .model import Residual, Sequential
from .models import build_lenet, build_logreg, build_mini_resnet, build_mlp
from .optim import SGD, Adam, Optimizer
from .schedules import ConstantLR, CosineLR, StepLR

__all__ = [
    "functional",
    "initializers",
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Flatten",
    "Dropout",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm",
    "Residual",
    "Sequential",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "build_logreg",
    "build_mlp",
    "build_lenet",
    "build_mini_resnet",
    "FleetSequential",
    "FleetSoftmaxCrossEntropy",
    "fleet_signature",
    "analytic_gradient",
    "numerical_gradient",
    "max_relative_error",
]
