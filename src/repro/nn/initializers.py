"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so every
experiment in the repository is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "zeros", "normal"]


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He/Kaiming normal init, suited to ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform init, suited to linear/tanh layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.01) -> np.ndarray:
    """Plain Gaussian init with given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape, dtype=np.float64)
