"""Stateless numerical primitives used by the neural-network layers.

Everything here is pure NumPy and fully vectorized; the hot paths
(``im2col``/``col2im``) follow the classic stride-trick formulation so that
convolutions reduce to a single GEMM, which is the dominant cost and maps
onto BLAS.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "relu_grad",
    "softmax",
    "log_softmax",
    "one_hot",
    "sigmoid",
    "im2col",
    "col2im",
    "conv_out_size",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectified linear unit, ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`relu` with respect to its input (0/1 mask)."""
    return (x > 0.0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis`` with the max-subtraction stability trick."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log-softmax along ``axis``, computed without materializing softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer label vector ``(n,)`` -> one-hot matrix ``(n, num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}); got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size {out} for input={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


# Patch-gather index plans, keyed on everything the index layout depends
# on: (c, h, w, kh, kw, stride, pad) — the batch size does not enter. Every
# round and every eval batch hits the same handful of shapes, so Conv2d and
# the pooling layers (which all unfold through im2col) stop recomputing the
# window geometry on each call. Bounded: a training run touches only a few
# distinct shapes; the guard keeps pathological shape churn from leaking.
_IM2COL_PLANS: dict[tuple, np.ndarray] = {}
_MAX_PLANS = 64


def _im2col_plan(
    c: int, h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """Cached flat gather indices: padded ``(c, hp, wp)`` -> patch rows.

    Returns an ``(oh * ow, c * kh * kw)`` int array; entry ``[o, q]`` is the
    flat position (within one padded sample) of element ``q`` of receptive
    field ``o``, with columns in ``(c, kh, kw)`` order.
    """
    key = (c, h, w, kh, kw, stride, pad)
    idx = _IM2COL_PLANS.get(key)
    if idx is None:
        oh = conv_out_size(h, kh, stride, pad)
        ow = conv_out_size(w, kw, stride, pad)
        hp, wp = h + 2 * pad, w + 2 * pad
        oy = stride * np.arange(oh, dtype=np.intp)
        ox = stride * np.arange(ow, dtype=np.intp)
        ky = np.arange(kh, dtype=np.intp)
        kx = np.arange(kw, dtype=np.intp)
        ci = np.arange(c, dtype=np.intp)
        y = oy[:, None, None, None, None] + ky[None, None, None, :, None]
        x_ = ox[None, :, None, None, None] + kx[None, None, None, None, :]
        flat = (ci[None, None, :, None, None] * hp + y) * wp + x_
        idx = np.ascontiguousarray(flat.reshape(oh * ow, c * kh * kw))
        if len(_IM2COL_PLANS) >= _MAX_PLANS:
            _IM2COL_PLANS.clear()
        _IM2COL_PLANS[key] = idx
    return idx


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold image patches into a matrix for GEMM-based convolution.

    Parameters
    ----------
    x : array of shape ``(n, c, h, w)``.
    kh, kw : kernel height/width.
    stride, pad : stride and symmetric zero padding.

    Returns
    -------
    Array of shape ``(n * oh * ow, c * kh * kw)`` where ``oh, ow`` are the
    output spatial dims. Row ``i`` holds one receptive field, flattened in
    ``(c, kh, kw)`` order.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    idx = _im2col_plan(c, h, w, kh, kw, stride, pad)
    flat = np.ascontiguousarray(x).reshape(n, -1)
    return flat[:, idx].reshape(n * oh * ow, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch gradients back to image.

    ``cols`` has shape ``(n * oh * ow, c * kh * kw)``; returns gradient with
    respect to the original ``(n, c, h, w)`` input (padding stripped).
    """
    n, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    # Scatter-add each kernel offset as one strided slice assignment; the
    # loop is over the (small) kernel window, not the image.
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
