"""Fleet-batched kernels: N model replicas trained as one stacked model.

Federated simulation runs N workers through the *same architecture* each
round; doing that as N sequential forward/backward passes leaves almost
all of the hardware idle (the FedJAX / ``jax.vmap`` observation). This
module stacks all replicas' parameters along a leading worker axis —
Dense weights become ``(N, in, out)``, Conv kernels ``(N, oc, c, k, k)``
— and runs every local SGD step for the whole fleet as single NumPy
calls: batched ``matmul`` for Dense, grouped im2col + batched GEMM for
Conv2d, per-worker-axis reductions for BatchNorm and the loss.

Activations carry the layout ``(N, B, ...)`` — worker axis first, then
the per-worker minibatch. Layers without per-worker state (activations,
pooling, flatten) are *merged-batch* wrappers around the scalar layers:
the input is viewed as one ``(N * B, ...)`` batch, so their numerics are
identical to the per-worker loop by construction. Layers with per-worker
parameters or statistics (Dense, Conv2d, BatchNorm) get dedicated batched
implementations whose per-worker slices perform exactly the scalar ops.

:func:`fleet_signature` decides eligibility: architectures containing
unsupported layers (e.g. Dropout, whose per-replica RNG stream cannot be
batched without changing draws) return ``None`` and the caller falls back
to the scalar path.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    Layer,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Tanh,
)
from .model import Residual, Sequential

__all__ = [
    "FleetLayer",
    "FleetDense",
    "FleetConv2d",
    "FleetBatchNorm",
    "FleetResidual",
    "FleetSequential",
    "FleetSoftmaxCrossEntropy",
    "fleet_signature",
]


def fleet_signature(model: Sequential) -> tuple | None:
    """Structural signature of a model, or ``None`` if fleet-ineligible.

    Two workers may share a fleet if and only if their models produce the
    same signature: identical layer sequence, shapes and hyperparameters.
    Unsupported layer types (Dropout, custom layers) make the whole model
    ineligible — those workers keep the scalar per-worker path.
    """
    try:
        return tuple(_layer_signature(layer) for layer in model.layers)
    except _Unsupported:
        return None


class _Unsupported(Exception):
    """Internal: raised while walking an ineligible architecture."""


def _layer_signature(layer: Layer) -> tuple:
    if isinstance(layer, Dense):
        return ("Dense", layer.in_features, layer.out_features)
    if isinstance(layer, Conv2d):
        return (
            "Conv2d",
            layer.in_channels,
            layer.out_channels,
            layer.kernel_size,
            layer.stride,
            layer.padding,
        )
    if isinstance(layer, BatchNorm):
        return ("BatchNorm", layer.num_features, layer.momentum, layer.eps)
    if isinstance(layer, ReLU):
        return ("ReLU",)
    if isinstance(layer, LeakyReLU):
        return ("LeakyReLU", layer.alpha)
    if isinstance(layer, Tanh):
        return ("Tanh",)
    if isinstance(layer, Flatten):
        return ("Flatten",)
    if isinstance(layer, MaxPool2d):
        return ("MaxPool2d", layer.kernel_size, layer.stride)
    if isinstance(layer, AvgPool2d):
        return ("AvgPool2d", layer.kernel_size, layer.stride)
    if isinstance(layer, GlobalAvgPool2d):
        return ("GlobalAvgPool2d",)
    if isinstance(layer, Residual):
        return (
            "Residual",
            tuple(_layer_signature(l) for l in layer.body),
            tuple(_layer_signature(l) for l in layer.shortcut),
        )
    raise _Unsupported(type(layer).__name__)


class FleetLayer:
    """Base fleet layer: params/buffers/grads stacked on a worker axis."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.buffers: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def sgd_step(self, lr: np.ndarray) -> None:
        """In-place ``p -= lr_i * grad`` per worker; ``lr`` has shape (N,)."""
        for name, p in self.params.items():
            g = self.grads[name]
            p -= lr.reshape((self.n,) + (1,) * (p.ndim - 1)) * g


class _MergedLayer(FleetLayer):
    """Wrap a parameter-free scalar layer over the merged ``(N*B, ...)`` batch.

    Activations, pooling and flatten treat every sample independently, so
    flattening the worker axis into the batch axis runs the *same* scalar
    code once for the whole fleet — numerics match the per-worker loop
    exactly because it literally is the same computation.
    """

    def __init__(self, n: int, inner: Layer) -> None:
        super().__init__(n)
        self.inner = inner
        self._batch: int | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._batch = x.shape[1]
        merged = x.reshape((self.n * x.shape[1],) + x.shape[2:])
        out = self.inner.forward(merged, training=training)
        return out.reshape((self.n, self._batch) + out.shape[1:])

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._batch is None:
            raise RuntimeError("backward called before forward")
        merged = grad_out.reshape(
            (self.n * self._batch,) + grad_out.shape[2:]
        )
        g = self.inner.backward(merged)
        return g.reshape((self.n, self._batch) + g.shape[1:])


class FleetDense(FleetLayer):
    """Batched fully connected layer: ``(N,B,in) @ (N,in,out) + (N,1,out)``."""

    def __init__(self, template: Dense, n: int) -> None:
        super().__init__(n)
        self.in_features = template.in_features
        self.out_features = template.out_features
        self.params["W"] = np.empty((n, self.in_features, self.out_features))
        self.params["b"] = np.empty((n, self.out_features))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 3 or x.shape[0] != self.n or x.shape[2] != self.in_features:
            raise ValueError(
                f"FleetDense expected ({self.n}, b, {self.in_features}), "
                f"got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.params["W"] + self.params["b"][:, None, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.grads["W"] = self._x.transpose(0, 2, 1) @ grad_out
        self.grads["b"] = grad_out.sum(axis=1)
        return grad_out @ self.params["W"].transpose(0, 2, 1)


class FleetConv2d(FleetLayer):
    """Batched conv: merged im2col (cached indices) + per-worker GEMM.

    The im2col unfold is worker-agnostic, so it runs once over the merged
    ``(N*B, c, h, w)`` batch through the shared index-plan cache; only the
    GEMM against the per-worker kernels is batched, as
    ``(N, B*oh*ow, c*k*k) @ (N, c*k*k, oc)``.
    """

    def __init__(self, template: Conv2d, n: int) -> None:
        super().__init__(n)
        self.in_channels = template.in_channels
        self.out_channels = template.out_channels
        self.kernel_size = template.kernel_size
        self.stride = template.stride
        self.padding = template.padding
        kk = self.in_channels * self.kernel_size * self.kernel_size
        self.params["W"] = np.empty(
            (n, self.out_channels, self.in_channels, self.kernel_size, self.kernel_size)
        )
        self.params["b"] = np.empty((n, self.out_channels))
        self._kk = kk
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 5 or x.shape[0] != self.n or x.shape[2] != self.in_channels:
            raise ValueError(
                f"FleetConv2d expected ({self.n}, b, {self.in_channels}, h, w), "
                f"got {x.shape}"
            )
        n, b, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        oh = F.conv_out_size(h, k, s, p)
        ow = F.conv_out_size(w, k, s, p)
        merged = x.reshape(n * b, c, h, w)
        cols = F.im2col(merged, k, k, s, p).reshape(n, b * oh * ow, self._kk)
        w_mat = self.params["W"].reshape(n, self.out_channels, self._kk)
        out = cols @ w_mat.transpose(0, 2, 1) + self.params["b"][:, None, :]
        out = out.reshape(n, b, oh, ow, self.out_channels).transpose(0, 1, 4, 2, 3)
        if training:
            self._cols = cols
            self._x_shape = x.shape
        else:
            self._cols = None
            self._x_shape = None
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, b, oc, oh, ow = grad_out.shape
        _, _, c, h, w = self._x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_mat = grad_out.transpose(0, 1, 3, 4, 2).reshape(n, b * oh * ow, oc)
        w_mat = self.params["W"].reshape(n, oc, self._kk)
        self.grads["W"] = (grad_mat.transpose(0, 2, 1) @ self._cols).reshape(
            self.params["W"].shape
        )
        self.grads["b"] = grad_mat.sum(axis=1)
        grad_cols = (grad_mat @ w_mat).reshape(n * b * oh * ow, self._kk)
        grad_merged = F.col2im(grad_cols, (n * b, c, h, w), k, k, s, p)
        return grad_merged.reshape(self._x_shape)


class FleetBatchNorm(FleetLayer):
    """Batched batchnorm: statistics per worker over that worker's batch."""

    def __init__(self, template: BatchNorm, n: int) -> None:
        super().__init__(n)
        self.num_features = template.num_features
        self.momentum = template.momentum
        self.eps = template.eps
        self.params["gamma"] = np.empty((n, self.num_features))
        self.params["beta"] = np.empty((n, self.num_features))
        self.buffers["running_mean"] = np.empty((n, self.num_features))
        self.buffers["running_var"] = np.empty((n, self.num_features))
        self._cache: tuple | None = None

    def _rows(self, x: np.ndarray) -> np.ndarray:
        """View input as ``(N, m, C)`` rows for per-worker statistics."""
        if x.ndim == 3:
            return x
        if x.ndim == 5:
            n, b, c, h, w = x.shape
            return x.transpose(0, 1, 3, 4, 2).reshape(n, b * h * w, c)
        raise ValueError(
            f"FleetBatchNorm supports (N,B,C) or (N,B,C,H,W), got {x.ndim}-D"
        )

    def _restore(self, rows: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        if len(shape) == 3:
            return rows
        n, b, c, h, w = shape
        return rows.reshape(n, b, h, w, c).transpose(0, 1, 4, 2, 3)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        rows = self._rows(x)
        if rows.shape[2] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {rows.shape[2]}"
            )
        if training:
            mean = rows.mean(axis=1)
            var = rows.var(axis=1)
            self.buffers["running_mean"] = (
                self.momentum * self.buffers["running_mean"]
                + (1 - self.momentum) * mean
            )
            self.buffers["running_var"] = (
                self.momentum * self.buffers["running_var"]
                + (1 - self.momentum) * var
            )
        else:
            mean = self.buffers["running_mean"]
            var = self.buffers["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (rows - mean[:, None, :]) * inv_std[:, None, :]
        out = xhat * self.params["gamma"][:, None, :] + self.params["beta"][:, None, :]
        if training:
            self._cache = (xhat, inv_std, x.shape)
        return self._restore(out, x.shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        xhat, inv_std, shape = self._cache
        grad_rows = self._rows(grad_out)
        m = grad_rows.shape[1]
        self.grads["gamma"] = (grad_rows * xhat).sum(axis=1)
        self.grads["beta"] = grad_rows.sum(axis=1)
        g = grad_rows * self.params["gamma"][:, None, :]
        grad_in = (
            inv_std[:, None, :]
            / m
            * (
                m * g
                - g.sum(axis=1, keepdims=True)
                - xhat * (g * xhat).sum(axis=1, keepdims=True)
            )
        )
        return self._restore(grad_in, shape)


class FleetResidual(FleetLayer):
    """Batched residual container: ``y = body(x) + shortcut(x)``."""

    def __init__(self, body: list[FleetLayer], shortcut: list[FleetLayer], n: int):
        super().__init__(n)
        self.body = body
        self.shortcut = shortcut

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.body:
            out = layer.forward(out, training=training)
        sc = x
        for layer in self.shortcut:
            sc = layer.forward(sc, training=training)
        return out + sc

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_body = grad_out
        for layer in reversed(self.body):
            grad_body = layer.backward(grad_body)
        grad_sc = grad_out
        for layer in reversed(self.shortcut):
            grad_sc = layer.backward(grad_sc)
        return grad_body + grad_sc

    def _sublayers(self):
        yield from self.body
        yield from self.shortcut


def _fresh_scalar(layer: Layer) -> Layer:
    """A state-free clone of a shape-agnostic scalar layer for merged use."""
    if isinstance(layer, ReLU):
        return ReLU()
    if isinstance(layer, LeakyReLU):
        return LeakyReLU(layer.alpha)
    if isinstance(layer, Tanh):
        return Tanh()
    if isinstance(layer, Flatten):
        return Flatten()
    if isinstance(layer, MaxPool2d):
        return MaxPool2d(layer.kernel_size, layer.stride)
    if isinstance(layer, AvgPool2d):
        return AvgPool2d(layer.kernel_size, layer.stride)
    if isinstance(layer, GlobalAvgPool2d):
        return GlobalAvgPool2d()
    raise _Unsupported(type(layer).__name__)


def _convert(layer: Layer, n: int) -> FleetLayer:
    if isinstance(layer, Dense):
        return FleetDense(layer, n)
    if isinstance(layer, Conv2d):
        return FleetConv2d(layer, n)
    if isinstance(layer, BatchNorm):
        return FleetBatchNorm(layer, n)
    if isinstance(layer, Residual):
        return FleetResidual(
            [_convert(l, n) for l in layer.body],
            [_convert(l, n) for l in layer.shortcut],
            n,
        )
    return _MergedLayer(n, _fresh_scalar(layer))


def _walk(layers) :
    for layer in layers:
        if isinstance(layer, FleetResidual):
            yield from _walk(layer._sublayers())
        else:
            yield layer


class FleetSoftmaxCrossEntropy:
    """Batched softmax cross-entropy: per-worker mean loss over its batch.

    ``forward(logits (N,B,C), labels (N,B))`` returns per-worker losses
    ``(N,)``; ``backward()`` returns ``d loss_i / d logits_i`` stacked.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        if logits.ndim != 3:
            raise ValueError(f"logits must be (n, b, classes), got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape != logits.shape[:2]:
            raise ValueError(
                f"labels shape {labels.shape} does not match {logits.shape[:2]}"
            )
        logp = F.log_softmax(logits, axis=2)
        self._probs = np.exp(logp)
        self._labels = labels
        picked = np.take_along_axis(logp, labels[:, :, None], axis=2)[:, :, 0]
        return -picked.mean(axis=1)

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        b = self._labels.shape[1]
        grad = self._probs.copy()
        np.put_along_axis(
            grad,
            self._labels[:, :, None],
            np.take_along_axis(grad, self._labels[:, :, None], axis=2) - 1.0,
            axis=2,
        )
        grad /= b
        return grad

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.forward(logits, labels)


class FleetSequential:
    """N stacked replicas of one :class:`Sequential` architecture.

    Parameter/buffer ordering matches the scalar model's flat-vector
    convention exactly (layer order, then sorted name), so ``(N, D)``
    stacks interoperate with the per-worker flat vectors the federated
    protocol ships.
    """

    def __init__(self, template: Sequential, n: int):
        if n <= 0:
            raise ValueError("fleet size must be positive")
        sig = fleet_signature(template)
        if sig is None:
            raise ValueError("architecture is not fleet-eligible")
        self.n = n
        self.signature = sig
        self.layers = [_convert(layer, n) for layer in template.layers]
        # (layer, name) slots in the scalar flat-vector order.
        self._param_slots: list[tuple[FleetLayer, str]] = [
            (layer, name)
            for layer in _walk(self.layers)
            if layer.params
            for name in sorted(layer.params)
        ]
        self._buffer_slots: list[tuple[FleetLayer, str]] = [
            (layer, name)
            for layer in _walk(self.layers)
            if layer.buffers
            for name in sorted(layer.buffers)
        ]
        self.num_params = sum(
            layer.params[name][0].size for layer, name in self._param_slots
        )
        self.num_buffer_values = sum(
            layer.buffers[name][0].size for layer, name in self._buffer_slots
        )

    # -- forward / backward -------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def sgd_step(self, lr: np.ndarray) -> None:
        """Per-worker SGD update from the last backward pass; ``lr`` is (N,)."""
        lr = np.asarray(lr, dtype=np.float64)
        if lr.shape != (self.n,):
            raise ValueError(f"lr must have shape ({self.n},), got {lr.shape}")
        for layer in _walk(self.layers):
            if layer.params:
                layer.sgd_step(lr)

    # -- stacked flat vectors -----------------------------------------------

    def _load(self, slots, vec: np.ndarray, expected: int) -> None:
        vec = np.asarray(vec, dtype=np.float64)
        broadcast = vec.ndim == 1
        if vec.shape != ((expected,) if broadcast else (self.n, expected)):
            raise ValueError(
                f"expected ({self.n}, {expected}) or ({expected},), got {vec.shape}"
            )
        offset = 0
        for layer, name in slots:
            target = (
                layer.params[name] if name in layer.params else layer.buffers[name]
            )
            size = target[0].size
            chunk = vec[..., offset : offset + size]
            if broadcast:
                # One shared row, broadcast-assigned across the worker axis.
                target[:] = chunk.reshape(target.shape[1:])
            else:
                target[:] = chunk.reshape(target.shape)
            offset += size

    def _gather(self, slots, total: int) -> np.ndarray:
        if not slots:
            return np.empty((self.n, 0))
        out = np.empty((self.n, total))
        offset = 0
        for layer, name in slots:
            source = (
                layer.params[name] if name in layer.params else layer.buffers[name]
            )
            size = source[0].size
            out[:, offset : offset + size] = source.reshape(self.n, size)
            offset += size
        return out

    def load_flat_params(self, vec: np.ndarray) -> None:
        """Load from a ``(D,)`` vector (broadcast to all workers) or ``(N, D)``."""
        self._load(self._param_slots, vec, self.num_params)

    def get_flat_params(self) -> np.ndarray:
        """Stacked ``(N, D)`` parameter matrix (copy)."""
        return self._gather(self._param_slots, self.num_params)

    def load_flat_buffers(self, vec: np.ndarray) -> None:
        self._load(self._buffer_slots, vec, self.num_buffer_values)

    def get_flat_buffers(self) -> np.ndarray:
        return self._gather(self._buffer_slots, self.num_buffer_values)

    def get_flat_grads(self) -> np.ndarray:
        """Stacked ``(N, D)`` gradients from the last backward pass."""
        out = np.empty((self.n, self.num_params))
        offset = 0
        for layer, name in self._param_slots:
            if name not in layer.grads:
                raise RuntimeError(
                    f"{type(layer).__name__}.{name} has no gradient; "
                    "run forward(training=True) + backward first"
                )
            g = layer.grads[name]
            size = g[0].size
            out[:, offset : offset + size] = g.reshape(self.n, size)
            offset += size
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"FleetSequential(n={self.n}, [{inner}], params={self.num_params})"
