"""Learning-rate schedules for the server-side global update.

The paper trains with a fixed η (Eq. 3); these schedules are the standard
extensions a practitioner reaches for on longer runs. They are plain
callables ``round_idx -> lr`` so both the federated trainer and local
optimizers can consume them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ConstantLR", "StepLR", "CosineLR"]


class ConstantLR:
    """Fixed learning rate (the paper's setting)."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def __call__(self, round_idx: int) -> float:
        return self.lr


class StepLR:
    """Multiply the rate by ``gamma`` every ``step_size`` rounds."""

    def __init__(self, initial: float, step_size: int, gamma: float = 0.5):
        if initial <= 0:
            raise ValueError("initial lr must be positive")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.initial = initial
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, round_idx: int) -> float:
        if round_idx < 0:
            raise ValueError("round_idx must be non-negative")
        return self.initial * self.gamma ** (round_idx // self.step_size)


class CosineLR:
    """Cosine annealing from ``initial`` to ``min_lr`` over ``total_rounds``."""

    def __init__(self, initial: float, total_rounds: int, min_lr: float = 0.0):
        if initial <= 0:
            raise ValueError("initial lr must be positive")
        if total_rounds <= 0:
            raise ValueError("total_rounds must be positive")
        if not 0.0 <= min_lr <= initial:
            raise ValueError("min_lr must be in [0, initial]")
        self.initial = initial
        self.total_rounds = total_rounds
        self.min_lr = min_lr

    def __call__(self, round_idx: int) -> float:
        if round_idx < 0:
            raise ValueError("round_idx must be non-negative")
        t = min(round_idx, self.total_rounds) / self.total_rounds
        return self.min_lr + 0.5 * (self.initial - self.min_lr) * (
            1.0 + np.cos(np.pi * t)
        )
