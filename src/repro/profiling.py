"""Lightweight per-phase profiling for the round engine.

The ROADMAP's north star is a simulator that runs "as fast as the
hardware allows"; you cannot optimise what you cannot see. This module
provides a :class:`Profiler` with named phase timers (wall-clock via
``time.perf_counter``) and counters, cheap enough to stay always-on:
one context-manager entry per phase per round, no allocation beyond a
dict slot per phase name.

One process-wide default profiler (:func:`get_profiler`) is shared by
:class:`~repro.fl.FederatedTrainer` and
:class:`~repro.core.FIFLMechanism` so a whole training run's phases land
in one place. Consumers that need per-run numbers (the trainer's
``TrainingHistory.profile``, the experiment runner's JSON output, the
engine benchmark) take a :meth:`Profiler.snapshot` before the work and
diff it after with :func:`profile_delta` — snapshots are plain nested
dicts, directly JSON-serializable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Profiler",
    "get_profiler",
    "set_profiler",
    "profile_delta",
    "format_profile",
]


class Profiler:
    """Accumulates wall-clock time and call counts per named phase."""

    def __init__(self) -> None:
        # phase name -> [total seconds, calls]
        self._timings: dict[str, list[float]] = {}
        self._counters: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; nested/repeated phases accumulate."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            slot = self._timings.get(name)
            if slot is None:
                self._timings[name] = [elapsed, 1]
            else:
                slot[0] += elapsed
                slot[1] += 1

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold an externally measured duration into a phase."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        slot = self._timings.get(name)
        if slot is None:
            self._timings[name] = [seconds, calls]
        else:
            slot[0] += seconds
            slot[1] += calls

    def count(self, name: str, n: float = 1) -> None:
        """Bump a named counter (workers scored, bytes moved, ...)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def snapshot(self) -> dict:
        """JSON-ready copy: ``{"timings": {phase: {"seconds", "calls"}},
        "counters": {...}}``."""
        return {
            "timings": {
                name: {"seconds": total, "calls": int(calls)}
                for name, (total, calls) in self._timings.items()
            },
            "counters": dict(self._counters),
        }

    def reset(self) -> None:
        self._timings.clear()
        self._counters.clear()


def profile_delta(before: dict, after: dict) -> dict:
    """What happened between two snapshots (phases new to ``after`` kept)."""
    timings = {}
    for name, stat in after["timings"].items():
        prev = before["timings"].get(name, {"seconds": 0.0, "calls": 0})
        seconds = stat["seconds"] - prev["seconds"]
        calls = stat["calls"] - prev["calls"]
        if calls > 0 or seconds > 0:
            timings[name] = {"seconds": seconds, "calls": calls}
    counters = {}
    for name, value in after["counters"].items():
        diff = value - before["counters"].get(name, 0)
        if diff:
            counters[name] = diff
    return {"timings": timings, "counters": counters}


def format_profile(profile: dict) -> list[str]:
    """Human-readable rows for a snapshot/delta, longest phase first."""
    rows = []
    timings = profile.get("timings", {})
    total = sum(s["seconds"] for s in timings.values())
    for name, stat in sorted(
        timings.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        share = 100.0 * stat["seconds"] / total if total > 0 else 0.0
        rows.append(
            f"{name:>16}  {stat['seconds'] * 1e3:10.2f} ms"
            f"  {stat['calls']:>7} calls  {share:5.1f}%"
        )
    for name, value in sorted(profile.get("counters", {}).items()):
        rows.append(f"{name:>16}  {value:g}")
    return rows


_PROFILER = Profiler()


def get_profiler() -> Profiler:
    """The process-wide profiler shared by trainer and mechanism."""
    return _PROFILER


def set_profiler(profiler: Profiler) -> Profiler:
    """Swap the process-wide profiler (returns the previous one)."""
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous
