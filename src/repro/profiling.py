"""Back-compat shim over :mod:`repro.telemetry` (the old flat profiler).

Historically this module owned the per-phase timing layer. The
telemetry tentpole (ISSUE 3) folded it into the richer
:class:`repro.telemetry.Telemetry` hub — hierarchical spans, metrics,
sinks — which implements the full legacy ``Profiler`` contract
(``phase`` / ``add_time`` / ``count`` / ``snapshot`` / ``reset``) on top.

The public names keep their exact contracts:

* ``Profiler()`` constructs a fresh hub (default in-memory sink);
* ``get_profiler()`` / ``set_profiler()`` alias the process-wide hub
  accessors, so the trainer, mechanism and engines all still share one
  accounting;
* ``profile_delta`` / ``format_profile`` operate on the unchanged
  snapshot shape ``{"timings": {phase: {"seconds", "calls"}},
  "counters": {...}}``.

New code should import from :mod:`repro.telemetry` directly. For
*analysing* recorded timings — flame-style span breakdowns, Perfetto
timeline export, trace-vs-trace regression attribution, resource
probes — see :mod:`repro.perf` (``python -m repro.perf trace.jsonl``).
"""

from __future__ import annotations

from .telemetry import (
    Telemetry as Profiler,
    format_profile,
    get_telemetry as get_profiler,
    profile_delta,
    set_telemetry as set_profiler,
)

__all__ = [
    "Profiler",
    "get_profiler",
    "set_profiler",
    "profile_delta",
    "format_profile",
]
