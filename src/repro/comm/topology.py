"""Communication topologies for the three FL architectures (paper S3.2).

Built on networkx so the per-architecture structure (who talks to whom)
can be analyzed — link counts drive the communication-overhead ablation —
and validated: the trainer asserts every (worker, server) exchange it
performs corresponds to an edge.
"""

from __future__ import annotations

import networkx as nx

__all__ = [
    "centralized_topology",
    "decentralized_topology",
    "polycentric_topology",
    "link_count",
    "validate_roles",
]


def centralized_topology(num_workers: int) -> nx.Graph:
    """Star: one dedicated server (node 0) and ``num_workers`` workers.

    The paper's M=1 case, with the server being one of the devices.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    g = nx.Graph(architecture="centralized")
    g.add_node(0, role="server")
    for w in range(num_workers):
        g.add_node(w, role="server+worker" if w == 0 else "worker")
        if w != 0:
            g.add_edge(0, w)
    return g


def decentralized_topology(num_workers: int) -> nx.Graph:
    """Complete graph: every device is both a worker and a 1/N server (M=N)."""
    if num_workers < 2:
        raise ValueError("decentralized needs at least two workers")
    g = nx.complete_graph(num_workers)
    g.graph["architecture"] = "decentralized"
    for n in g.nodes:
        g.nodes[n]["role"] = "server+worker"
    return g


def polycentric_topology(num_workers: int, server_ranks: list[int]) -> nx.Graph:
    """Polycentric: servers are a subset of workers (S ⊂ W, paper Fig. 1).

    Every worker is connected to every server (workers send slice j to
    server j and download global slices back).
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    servers = sorted(set(server_ranks))
    if not servers:
        raise ValueError("need at least one server")
    if servers[0] < 0 or servers[-1] >= num_workers:
        raise ValueError("server ranks must be valid worker ranks (S ⊂ W)")
    g = nx.Graph(architecture="polycentric")
    for w in range(num_workers):
        g.add_node(w, role="server+worker" if w in servers else "worker")
    for s in servers:
        for w in range(num_workers):
            if w != s:
                g.add_edge(s, w)
    return g


def link_count(g: nx.Graph) -> int:
    """Number of physical links the architecture requires."""
    return g.number_of_edges()


def validate_roles(g: nx.Graph) -> tuple[list[int], list[int]]:
    """Return (servers, workers) node lists; raise if any node lacks a role."""
    servers, workers = [], []
    for n, data in g.nodes(data=True):
        role = data.get("role")
        if role is None:
            raise ValueError(f"node {n} has no role attribute")
        if "server" in role:
            servers.append(n)
        if "worker" in role:
            workers.append(n)
    if not servers:
        raise ValueError("topology has no servers")
    if not workers:
        raise ValueError("topology has no workers")
    return sorted(servers), sorted(workers)
