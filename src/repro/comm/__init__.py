"""In-process communication substrate: lossy channels and FL topologies."""

from .channel import DropLog, Message, Network
from .topology import (
    centralized_topology,
    decentralized_topology,
    link_count,
    polycentric_topology,
    validate_roles,
)

__all__ = [
    "Message",
    "DropLog",
    "Network",
    "centralized_topology",
    "decentralized_topology",
    "polycentric_topology",
    "link_count",
    "validate_roles",
]
