"""In-process message-passing substrate with MPI-style semantics.

The paper's polycentric FL protocol moves gradient *slices* between
workers and servers (S3.2 steps 1.3/1.4). We reproduce that protocol over
an in-process network that keeps MPI's send/recv/bcast/gather vocabulary
(mirroring how a multi-node deployment would be written with mpi4py) while
adding three things the experiments need:

* **failure injection** — each link can drop messages with a configured
  probability, and links can be deterministically blocked (partitions,
  crashed nodes); drops surface as the SLM reputation module's
  *uncertain events* (S4.2);
* **byte accounting** — every payload accepted onto a link is tallied,
  so the communication-overhead ablations can compare centralized,
  polycentric, and decentralized architectures quantitatively. The same
  tallies stream into :mod:`repro.telemetry` as ``comm.*`` counters;
* **latency** — attached to a :class:`~repro.sim.Simulator` with a
  :class:`~repro.sim.latency.LatencyModel`, a sent message *arrives at a
  time* instead of appearing instantly: the send schedules a delivery
  event on the simulator's virtual clock. Without a latency model the
  legacy instantaneous path is taken unchanged (and makes no extra RNG
  draws), which is what keeps zero-latency simulated runs bit-identical
  to direct ones.
"""

from __future__ import annotations

import sys
import warnings
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..telemetry import get_telemetry

__all__ = ["Message", "DropLog", "Network"]


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    src: int
    dst: int
    tag: str
    payload: Any
    nbytes: int


@dataclass
class DropLog:
    """Record of messages lost to injected link failures."""

    drops: list[tuple[int, int, str]] = field(default_factory=list)

    def count(self, src: int | None = None, dst: int | None = None) -> int:
        return sum(
            1
            for s, d, _ in self.drops
            if (src is None or s == src) and (dst is None or d == dst)
        )


#: payload types already warned about by the size fallback (one warning
#: per type per process keeps a hot loop from spamming)
_SIZE_FALLBACK_WARNED: set[type] = set()


def _payload_nbytes(payload: Any) -> int:
    """Best-effort size of a payload in bytes (arrays dominate in FL)."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (bytes, bytearray, str)):
        return len(payload)
    # Unknown type: a silent 0 would corrupt the communication-overhead
    # ablation's byte accounting, so fall back to the interpreter's own
    # (conservative) object size and say so once per type.
    tp = type(payload)
    if tp not in _SIZE_FALLBACK_WARNED:
        _SIZE_FALLBACK_WARNED.add(tp)
        warnings.warn(
            f"comm: no byte accounting rule for payload type "
            f"{tp.__module__}.{tp.__qualname__}; falling back to "
            f"sys.getsizeof — wire-size estimates for this type are "
            f"approximate",
            RuntimeWarning,
            stacklevel=2,
        )
    return int(sys.getsizeof(payload))


class Network:
    """A set of nodes exchanging tagged messages over lossy links.

    Nodes are integer ranks ``0..num_nodes-1``. Messages are queued per
    ``(dst, src, tag)`` so receives are deterministic FIFO per link+tag
    (FIFO in *arrival* order: under a random latency model messages on
    the same link may overtake each other, as on a real network).
    """

    def __init__(
        self,
        num_nodes: int,
        drop_prob: float = 0.0,
        seed: int = 0,
        latency=None,
        sim=None,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if latency is not None and sim is None:
            raise ValueError("a latency model needs a Simulator (sim=...)")
        self.num_nodes = num_nodes
        self.default_drop_prob = drop_prob
        self._link_drop: dict[tuple[int, int], float] = {}
        self._blocked: set[tuple[int, int]] = set()
        self._rng = np.random.default_rng(seed)
        # The latency stream is separate from the drop stream: attaching
        # a latency model must not change which messages drop.
        self._lat_rng = np.random.default_rng((seed, 0x1A7E))
        self.latency = latency
        self.sim = sim
        self._queues: dict[tuple[int, int, str], deque[Message]] = defaultdict(deque)
        # tag -> live queue keys, so cancel_tag is O(links on that tag)
        # rather than a scan of every key ever created
        self._tag_keys: dict[str, set[tuple[int, int, str]]] = defaultdict(set)
        self._dead_tags: set[str] = set()
        self.in_flight = 0
        self.drop_log = DropLog()
        self.bytes_sent: dict[tuple[int, int], int] = defaultdict(int)
        self.messages_sent = 0
        self.messages_delivered = 0

    # -- configuration -------------------------------------------------------

    def set_link_drop_prob(self, src: int, dst: int, prob: float) -> None:
        """Override drop probability for one directed link."""
        self._check_rank(src)
        self._check_rank(dst)
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        self._link_drop[(src, dst)] = prob

    def block_link(self, src: int, dst: int) -> None:
        """Deterministically drop everything on one directed link.

        Unlike a drop probability of 1.0 this consumes no RNG draws, so
        transient partitions keep seeded runs byte-reproducible.
        """
        self._check_rank(src)
        self._check_rank(dst)
        self._blocked.add((src, dst))

    def unblock_link(self, src: int, dst: int) -> None:
        """Lift a :meth:`block_link` outage (no-op if not blocked)."""
        self._blocked.discard((src, dst))

    def set_blocked_links(self, links: set[tuple[int, int]]) -> None:
        """Replace the whole blocked-link set (round-boundary partitions)."""
        for src, dst in links:
            self._check_rank(src)
            self._check_rank(dst)
        self._blocked = set(links)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_nodes:
            raise ValueError(f"rank {rank} outside [0, {self.num_nodes})")

    def _drop_prob(self, src: int, dst: int) -> float:
        return self._link_drop.get((src, dst), self.default_drop_prob)

    # -- point-to-point ------------------------------------------------------

    def send(self, src: int, dst: int, tag: str, payload: Any) -> bool:
        """Send one message; returns False if the link dropped it.

        With a latency model attached the message is scheduled to arrive
        ``latency.sample(...)`` virtual seconds from now; otherwise it is
        enqueued instantly. Drops are decided synchronously either way
        (the simulator is omniscient: a sender learns about a drop at
        send time, which is what the bounded-retry process keys on).
        """
        self._check_rank(src)
        self._check_rank(dst)
        tele = get_telemetry()
        self.messages_sent += 1
        tele.count("comm.messages_sent")
        if (src, dst) in self._blocked:
            self.drop_log.drops.append((src, dst, tag))
            tele.count("comm.drops")
            return False
        p = self._drop_prob(src, dst)
        if p > 0.0 and self._rng.random() < p:
            self.drop_log.drops.append((src, dst, tag))
            tele.count("comm.drops")
            return False
        nbytes = _payload_nbytes(payload)
        msg = Message(src, dst, tag, payload, nbytes)
        self.bytes_sent[(src, dst)] += nbytes
        tele.count("comm.bytes_sent", nbytes)
        if self.latency is not None:
            delay = float(self.latency.sample(self._lat_rng, src, dst, nbytes))
            tele.observe("sim.latency", delay)
            self.in_flight += 1
            self.sim.schedule(delay, self._deliver, msg)
        else:
            self._queues[(dst, src, tag)].append(msg)
            self._tag_keys[tag].add((dst, src, tag))
        return True

    def _deliver(self, msg: Message) -> None:
        """Delivery event: the in-flight message lands in its queue."""
        self.in_flight -= 1
        if msg.tag in self._dead_tags:
            return  # round already closed; late arrival is discarded
        self._queues[(msg.dst, msg.src, msg.tag)].append(msg)
        self._tag_keys[msg.tag].add((msg.dst, msg.src, msg.tag))

    def cancel_tag(self, tag: str) -> None:
        """Close a tag: purge its queues and discard late arrivals.

        Round tags are unique (``slice:<t>``), so closing them when the
        round ends keeps straggling deliveries from accumulating.
        """
        self._dead_tags.add(tag)
        for key in self._tag_keys.pop(tag, ()):
            self._queues.pop(key, None)

    def recv(self, dst: int, src: int, tag: str) -> Message | None:
        """Pop the oldest message on (src -> dst, tag); None if empty."""
        self._check_rank(dst)
        self._check_rank(src)
        queue = self._queues.get((dst, src, tag))
        if not queue:
            return None
        self.messages_delivered += 1
        get_telemetry().count("comm.messages_delivered")
        return queue.popleft()

    def pending(self, dst: int, src: int, tag: str) -> int:
        """Number of undelivered messages on a link+tag."""
        return len(self._queues.get((dst, src, tag), ()))

    # -- collectives (MPI vocabulary over the same lossy links) ---------------

    def bcast(self, src: int, dsts: list[int], tag: str, payload: Any) -> list[int]:
        """Send payload to each destination; returns ranks actually reached."""
        return [d for d in dsts if self.send(src, d, tag, payload)]

    def gather(self, dst: int, srcs: list[int], tag: str) -> dict[int, Any]:
        """Collect one pending message per source; missing sources omitted."""
        out: dict[int, Any] = {}
        for s in srcs:
            msg = self.recv(dst, s, tag)
            if msg is not None:
                out[s] = msg.payload
        return out

    def scatter(
        self, src: int, parts: dict[int, Any], tag: str
    ) -> list[int]:
        """Send a distinct payload to each destination rank."""
        return [d for d, payload in parts.items() if self.send(src, d, tag, payload)]

    # -- accounting ----------------------------------------------------------

    def total_bytes(self) -> int:
        """Total bytes accepted onto all links."""
        return sum(self.bytes_sent.values())

    def reset_stats(self) -> None:
        """Clear byte/drop accounting but keep queued messages."""
        self.bytes_sent.clear()
        self.drop_log = DropLog()
        self.messages_sent = 0
        self.messages_delivered = 0
