"""In-process message-passing substrate with MPI-style semantics.

The paper's polycentric FL protocol moves gradient *slices* between
workers and servers (S3.2 steps 1.3/1.4). We reproduce that protocol over
an in-process network that keeps MPI's send/recv/bcast/gather vocabulary
(mirroring how a multi-node deployment would be written with mpi4py) while
adding two things the experiments need:

* **failure injection** — each link can drop messages with a configured
  probability; drops surface as the SLM reputation module's *uncertain
  events* (S4.2);
* **byte accounting** — every delivered payload's size is tallied per
  link, so the communication-overhead ablations can compare centralized,
  polycentric, and decentralized architectures quantitatively.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Message", "DropLog", "Network"]


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    src: int
    dst: int
    tag: str
    payload: Any
    nbytes: int


@dataclass
class DropLog:
    """Record of messages lost to injected link failures."""

    drops: list[tuple[int, int, str]] = field(default_factory=list)

    def count(self, src: int | None = None, dst: int | None = None) -> int:
        return sum(
            1
            for s, d, _ in self.drops
            if (src is None or s == src) and (dst is None or d == dst)
        )


def _payload_nbytes(payload: Any) -> int:
    """Best-effort size of a payload in bytes (arrays dominate in FL)."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (bytes, bytearray, str)):
        return len(payload)
    return 0


class Network:
    """A set of nodes exchanging tagged messages over lossy links.

    Nodes are integer ranks ``0..num_nodes-1``. Messages are queued per
    ``(dst, src, tag)`` so receives are deterministic FIFO per link+tag.
    """

    def __init__(
        self,
        num_nodes: int,
        drop_prob: float = 0.0,
        seed: int = 0,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        self.num_nodes = num_nodes
        self.default_drop_prob = drop_prob
        self._link_drop: dict[tuple[int, int], float] = {}
        self._rng = np.random.default_rng(seed)
        self._queues: dict[tuple[int, int, str], deque[Message]] = defaultdict(deque)
        self.drop_log = DropLog()
        self.bytes_sent: dict[tuple[int, int], int] = defaultdict(int)
        self.messages_delivered = 0

    # -- configuration -------------------------------------------------------

    def set_link_drop_prob(self, src: int, dst: int, prob: float) -> None:
        """Override drop probability for one directed link."""
        self._check_rank(src)
        self._check_rank(dst)
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        self._link_drop[(src, dst)] = prob

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_nodes:
            raise ValueError(f"rank {rank} outside [0, {self.num_nodes})")

    def _drop_prob(self, src: int, dst: int) -> float:
        return self._link_drop.get((src, dst), self.default_drop_prob)

    # -- point-to-point ------------------------------------------------------

    def send(self, src: int, dst: int, tag: str, payload: Any) -> bool:
        """Send one message; returns False if the link dropped it."""
        self._check_rank(src)
        self._check_rank(dst)
        p = self._drop_prob(src, dst)
        if p > 0.0 and self._rng.random() < p:
            self.drop_log.drops.append((src, dst, tag))
            return False
        nbytes = _payload_nbytes(payload)
        self._queues[(dst, src, tag)].append(Message(src, dst, tag, payload, nbytes))
        self.bytes_sent[(src, dst)] += nbytes
        return True

    def recv(self, dst: int, src: int, tag: str) -> Message | None:
        """Pop the oldest message on (src -> dst, tag); None if empty."""
        self._check_rank(dst)
        self._check_rank(src)
        queue = self._queues.get((dst, src, tag))
        if not queue:
            return None
        self.messages_delivered += 1
        return queue.popleft()

    def pending(self, dst: int, src: int, tag: str) -> int:
        """Number of undelivered messages on a link+tag."""
        return len(self._queues.get((dst, src, tag), ()))

    # -- collectives (MPI vocabulary over the same lossy links) ---------------

    def bcast(self, src: int, dsts: list[int], tag: str, payload: Any) -> list[int]:
        """Send payload to each destination; returns ranks actually reached."""
        return [d for d in dsts if self.send(src, d, tag, payload)]

    def gather(self, dst: int, srcs: list[int], tag: str) -> dict[int, Any]:
        """Collect one pending message per source; missing sources omitted."""
        out: dict[int, Any] = {}
        for s in srcs:
            msg = self.recv(dst, s, tag)
            if msg is not None:
                out[s] = msg.payload
        return out

    def scatter(
        self, src: int, parts: dict[int, Any], tag: str
    ) -> list[int]:
        """Send a distinct payload to each destination rank."""
        return [d for d, payload in parts.items() if self.send(src, d, tag, payload)]

    # -- accounting ----------------------------------------------------------

    def total_bytes(self) -> int:
        """Total bytes accepted onto all links."""
        return sum(self.bytes_sent.values())

    def reset_stats(self) -> None:
        """Clear byte/drop accounting but keep queued messages."""
        self.bytes_sent.clear()
        self.drop_log = DropLog()
        self.messages_delivered = 0
