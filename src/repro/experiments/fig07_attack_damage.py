"""Figure 7: attacker damage on the MNIST-like task (no defence).

(a) global accuracy vs round for sign-flipping intensities p_s;
(b) global accuracy for different attacker types (none / sign-flip /
    data-poison / joint).

The paper's observations to reproduce: damage grows with p_s; strong
attackers (p_s >= 10) crash training; sign-flipping hurts more than
data-poisoning; the joint attack is worst.
"""

from __future__ import annotations

from .common import FedExpConfig, data_poison, run_federated, sign_flip

__all__ = [
    "default_config",
    "run",
    "run_intensity_sweep",
    "run_type_comparison",
    "format_rows",
]

PAPER_INTENSITIES = (0.0, 4.0, 6.0, 8.0, 10.0)


def default_config() -> FedExpConfig:
    # Calibrated so the clean run converges to ~0.99 accuracy in ~40
    # rounds; one attacker among 10 workers gives graded damage (two
    # attackers of any intensity >= 4 already crash this small model).
    return FedExpConfig(
        rounds=40,
        eval_every=4,
        lr=0.02,
        server_lr=0.02,
        samples_per_worker=300,
        local_iters=2,
    )


def run_intensity_sweep(
    cfg: FedExpConfig | None = None,
    intensities: tuple[float, ...] = PAPER_INTENSITIES,
    num_attackers: int = 1,
) -> dict:
    """Fig. 7(a): accuracy curves per sign-flip intensity (0 = clean)."""
    cfg = cfg if cfg is not None else default_config()
    curves: dict[float, list] = {}
    for p_s in intensities:
        attackers = (
            {i: sign_flip(p_s) for i in range(2, 2 + num_attackers)}
            if p_s > 0
            else {}
        )
        history, _ = run_federated(cfg, attackers, with_fifl=False)
        curves[p_s] = history.series("test_acc")
    return {"curves": curves, "rounds": cfg.rounds, "eval_every": cfg.eval_every}


def run_type_comparison(
    cfg: FedExpConfig | None = None,
    p_s: float = 6.0,
    p_d: float = 0.9,
    num_attackers: int = 2,
) -> dict:
    """Fig. 7(b): accuracy per attacker type."""
    cfg = cfg if cfg is not None else default_config()
    ids = list(range(2, 2 + max(2, num_attackers)))
    scenarios = {
        "none": {},
        "sign_flip": {ids[0]: sign_flip(p_s)},
        "data_poison": {i: data_poison(p_d) for i in ids},
        "joint": {ids[0]: sign_flip(p_s), ids[-1]: data_poison(p_d)},
    }
    curves = {}
    for name, attackers in scenarios.items():
        history, _ = run_federated(cfg, attackers, with_fifl=False)
        curves[name] = history.series("test_acc")
    return {"curves": curves}


def run(cfg: FedExpConfig | None = None, **overrides) -> dict:
    """Unified driver entry: both panels under one config.

    Returns ``{"intensity": <7(a) result>, "types": <7(b) result>}``.
    """
    cfg = cfg if cfg is not None else default_config()
    if overrides:
        cfg = cfg.scaled(**overrides)
    return {
        "intensity": run_intensity_sweep(cfg),
        "types": run_type_comparison(cfg),
    }


def _final(series: list) -> float:
    return next(v for v in reversed(series) if v is not None)


def format_rows(result: dict, result_b: dict | None = None) -> list[str]:
    """Paper rows from a combined :func:`run` result (or the two legacy
    per-panel dicts passed separately)."""
    if result_b is not None:
        result = {"intensity": result, "types": result_b}
    rows = ["Fig 7(a) final accuracy by sign-flip intensity p_s"]
    for p_s, series in result["intensity"]["curves"].items():
        rows.append(f"  p_s={p_s:>5.1f}  final_acc={_final(series):.3f}")
    rows.append("Fig 7(b) final accuracy by attacker type")
    for name, series in result["types"]["curves"].items():
        rows.append(f"  {name:>12}  final_acc={_final(series):.3f}")
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
