"""Simulation experiment: reputation and rewards under worker/server churn.

The paper's incentive mechanism is pitched at open federations where
devices come and go (S1), but the figure experiments all run fixed
rosters. This scenario runs FIFL over the discrete-event kernel with a
churn schedule derived from the round budget:

* a plain worker leaves mid-training and later rejoins — while away it
  earns nothing and its reputation freezes (absent, not uncertain);
* a *server* crashes and later restarts — while it is down every upload
  loses a slice, so all online workers become SLM *uncertain events*
  and aggregation stalls, exactly the S3.2 fault-tolerance story.

Tracked outputs: per-worker reputation trajectories, cumulative-reward
trajectories, the per-round uncertain count (spikes during the server
outage), and virtual round durations. The whole run is seeded and
byte-reproducible (same seed + scenario => identical histories).
"""

from __future__ import annotations

import numpy as np

from ..sim import FaultScenario, LatencyConfig
from .common import FedExpConfig, run_federated

__all__ = ["default_config", "run", "format_rows"]


def default_config() -> FedExpConfig:
    return FedExpConfig(
        dataset="blobs",
        num_workers=8,
        samples_per_worker=120,
        test_samples=150,
        rounds=18,
        eval_every=6,
        gamma=0.3,
        server_ranks=(0, 1),
    )


def make_scenario(cfg: FedExpConfig) -> tuple[FaultScenario, dict]:
    """Churn schedule scaled to the round budget (works under --fast)."""
    R = cfg.rounds
    churn_worker = cfg.num_workers - 1
    crashed_server = cfg.server_ranks[-1]
    leave_r = max(1, R // 6)
    rejoin_r = max(leave_r + 1, R // 3)
    crash_r = max(rejoin_r + 1, R // 2)
    restart_r = min(R - 1, crash_r + max(1, R // 5))
    scenario = FaultScenario(
        name="churn",
        latency=LatencyConfig(kind="uniform", a=0.01, b=0.05),
        round_timeout_s=5.0,
        max_retries=1,
        base_compute_s=0.1,
        churn=(
            (leave_r, churn_worker, "leave"),
            (rejoin_r, churn_worker, "join"),
            (crash_r, crashed_server, "leave"),
            (restart_r, crashed_server, "join"),
        ),
        seed=cfg.seed,
    )
    schedule = {
        "churn_worker": churn_worker,
        "crashed_server": crashed_server,
        "worker_away": (leave_r, rejoin_r),
        "server_down": (crash_r, restart_r),
    }
    return scenario, schedule


def run(cfg: FedExpConfig | None = None) -> dict:
    """Reputation/reward trajectories under a churn + crash schedule."""
    cfg = cfg if cfg is not None else default_config()
    scenario, schedule = make_scenario(cfg)
    cfg = cfg.scaled(scenario=scenario)
    history, mech = run_federated(cfg, attackers=None, with_fifl=True)
    assert mech is not None

    stable_worker = cfg.num_workers - 2  # honest, never churned: the control
    tracked = {
        "churned": schedule["churn_worker"],
        "stable": stable_worker,
    }
    reputations = {
        name: mech.reputation_history(wid) for name, wid in tracked.items()
    }
    cum_rewards = {}
    for name, wid in tracked.items():
        per_round = [rec.rewards.get(wid, 0.0) for rec in mech.records]
        cum_rewards[name] = list(np.cumsum(per_round))

    uncertain = [len(r.uncertain) for r in history.rounds]
    crash_r, restart_r = schedule["server_down"]
    outage = uncertain[crash_r:restart_r]
    return {
        "schedule": schedule,
        "tracked": tracked,
        "reputations": reputations,
        "cumulative_rewards": cum_rewards,
        "uncertain_per_round": uncertain,
        "durations_s": [r.duration_s for r in history.rounds],
        "retries": sum((r.sim or {}).get("retries", 0) for r in history.rounds),
        "mean_uncertain_during_outage": float(np.mean(outage)) if outage else 0.0,
        "mean_uncertain_elsewhere": float(
            np.mean(uncertain[:crash_r] + uncertain[restart_r:])
        ),
    }


def format_rows(result: dict) -> list[str]:
    sched = result["schedule"]
    rows = [
        "Sim: churn + server crash/restart (discrete-event kernel)",
        f"  worker {sched['churn_worker']} away rounds "
        f"{sched['worker_away'][0]}..{sched['worker_away'][1]}, "
        f"server {sched['crashed_server']} down rounds "
        f"{sched['server_down'][0]}..{sched['server_down'][1]}",
        f"  uncertain/round during outage={result['mean_uncertain_during_outage']:.2f}"
        f"  elsewhere={result['mean_uncertain_elsewhere']:.2f}"
        f"  retries={result['retries']}",
    ]
    for name in ("churned", "stable"):
        rep = result["reputations"][name]
        cum = result["cumulative_rewards"][name]
        rows.append(
            f"  {name:>8} worker {result['tracked'][name]}:"
            f"  final reputation={rep[-1]:.3f}"
            f"  cumulative reward={cum[-1]:.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
