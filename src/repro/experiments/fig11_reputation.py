"""Figure 11: reputation tracks workers' attack probabilities.

Four probabilistic attackers with p_a in {0.2, 0.4, 0.6, 0.8} train
alongside honest workers; each attacker's reputation trajectory should
fluctuate around its trustworthiness 1 - p_a (Theorem 1) without
converging to a constant (it stays sensitive to recent events).
"""

from __future__ import annotations

import numpy as np

from .common import FedExpConfig, probabilistic, run_federated

__all__ = ["run", "format_rows"]

PAPER_ATTACK_PROBS = (0.2, 0.4, 0.6, 0.8)


def default_config() -> FedExpConfig:
    return FedExpConfig(
        dataset="blobs",
        num_workers=8,
        samples_per_worker=120,
        test_samples=150,
        rounds=60,
        eval_every=60,
        gamma=0.2,
        server_ranks=(0, 1),
    )


def run(
    cfg: FedExpConfig | None = None,
    attack_probs: tuple[float, ...] = PAPER_ATTACK_PROBS,
    p_s: float = 4.0,
) -> dict:
    """Reputation trajectories of probabilistic attackers."""
    cfg = cfg if cfg is not None else default_config()
    if len(attack_probs) + 2 > cfg.num_workers:
        raise ValueError("not enough worker slots for the attackers")
    # attackers occupy the tail ids so servers (0,1) stay honest
    ids = list(range(cfg.num_workers - len(attack_probs), cfg.num_workers))
    attackers = {i: probabilistic(p_a, p_s) for i, p_a in zip(ids, attack_probs)}
    _, mech = run_federated(cfg, attackers, with_fifl=True)
    assert mech is not None
    trajectories = {
        p_a: mech.reputation_history(i) for i, p_a in zip(ids, attack_probs)
    }
    tail = max(5, cfg.rounds // 3)
    tail_means = {
        p_a: float(np.mean(traj[-tail:])) for p_a, traj in trajectories.items()
    }
    return {
        "trajectories": trajectories,
        "tail_means": tail_means,
        "expected": {p_a: 1.0 - p_a for p_a in attack_probs},
    }


def format_rows(result: dict) -> list[str]:
    rows = ["Fig 11: reputation vs attack probability p_a"]
    for p_a, mean in result["tail_means"].items():
        rows.append(
            f"  p_a={p_a:.1f}  tail-mean reputation={mean:.3f}"
            f"  expected (1-p_a)={result['expected'][p_a]:.1f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
