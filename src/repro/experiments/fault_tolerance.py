"""Extension experiment: node failure and the polycentric recovery story.

S3.2: "decentralized architecture lacks fault tolerance in which any node
failure will cause the system to crash"; the polycentric design tolerates
worker failures and — with S4.5's per-round re-selection — even server
failures. Three scenarios, one mid-training crash each:

* ``worker_fails``  — a plain worker dies: training continues;
* ``server_fails``  — a static-cluster server dies: every upload loses a
  slice, aggregation stalls, accuracy freezes (the crash the paper warns
  about);
* ``server_fails_reselect`` — same crash, but reputation-based
  re-selection replaces the dead server and training resumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import make_mechanism
from ..datasets import iid_partition, make_blobs, train_test_split
from ..fl import FederatedTrainer, HonestWorker
from ..nn import build_logreg
from .common import DriverConfig

__all__ = ["FaultToleranceConfig", "default_config", "run", "format_rows"]

_N_FEATURES, _N_CLASSES = 16, 4


@dataclass(frozen=True)
class FaultToleranceConfig(DriverConfig):
    num_workers: int = 8
    rounds: int = 24
    fail_at: int = 5
    seed: int = 0


def default_config() -> FaultToleranceConfig:
    return FaultToleranceConfig()


def _build(num_workers: int, seed: int, reselect_every: int):
    # harder task (low signal-to-noise) so convergence spans the run and
    # a mid-training stall is clearly visible in the accuracy curve
    data = make_blobs(
        n_samples=1500, n_features=_N_FEATURES, num_classes=_N_CLASSES,
        signal=1.0, noise=2.0, seed=seed,
    )
    train, test = train_test_split(data, 0.2, seed=seed)
    shards = iid_partition(train, num_workers, seed=seed)
    model_fn = lambda: build_logreg(_N_FEATURES, _N_CLASSES, seed=seed)
    workers = [
        HonestWorker(i, shards[i], model_fn, lr=0.1, seed=seed + 100 + i)
        for i in range(num_workers)
    ]
    mech = make_mechanism("fifl", threshold=0.0, gamma=0.4)
    trainer = FederatedTrainer(
        model_fn(), workers, [0, 1], test_data=test, mechanism=mech,
        server_lr=0.1, seed=seed, reselect_every=reselect_every,
    )
    return trainer


def _run_with_failure(
    fail_rank: int | None,
    fail_at: int,
    rounds: int,
    num_workers: int,
    seed: int,
    reselect_every: int = 0,
):
    trainer = _build(num_workers, seed, reselect_every)
    accs = []
    for t in range(rounds):
        if fail_rank is not None and t == fail_at:
            trainer.fail_node(fail_rank)
        rec = trainer.run_round(t)
        accs.append(rec.test_acc)
        if reselect_every and (t + 1) % reselect_every == 0:
            trainer._reselect_servers()
    return accs, trainer


def run(cfg: FaultToleranceConfig | None = None, **overrides) -> dict:
    """Accuracy trajectories for the three failure scenarios + baseline."""
    cfg = (cfg if cfg is not None else default_config()).scaled(**overrides)
    num_workers, rounds, fail_at, seed = (
        cfg.num_workers, cfg.rounds, cfg.fail_at, cfg.seed,
    )
    if not 0 < fail_at < rounds:
        raise ValueError("fail_at must fall inside the training run")
    scenarios: dict[str, dict] = {}

    accs, _ = _run_with_failure(None, fail_at, rounds, num_workers, seed)
    scenarios["no_failure"] = {"acc": accs}

    accs, _ = _run_with_failure(num_workers - 1, fail_at, rounds, num_workers, seed)
    scenarios["worker_fails"] = {"acc": accs}

    accs, _ = _run_with_failure(1, fail_at, rounds, num_workers, seed)
    scenarios["server_fails"] = {"acc": accs}

    accs, trainer = _run_with_failure(
        1, fail_at, rounds, num_workers, seed, reselect_every=1
    )
    scenarios["server_fails_reselect"] = {
        "acc": accs,
        "final_servers": trainer.server_ranks,
    }

    for s in scenarios.values():
        series = s["acc"]
        s["final_acc"] = series[-1]
        s["acc_at_failure"] = series[fail_at]
    return {"scenarios": scenarios, "fail_at": fail_at}


def format_rows(result: dict) -> list[str]:
    rows = [f"Fault tolerance (crash at round {result['fail_at']})"]
    for name, s in result["scenarios"].items():
        extra = ""
        if "final_servers" in s:
            extra = f"  servers={s['final_servers']}"
        rows.append(
            f"  {name:>22}  acc@fail={s['acc_at_failure']:.3f}  "
            f"final={s['final_acc']:.3f}{extra}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
