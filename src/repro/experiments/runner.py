"""Run paper experiments from the command line and save JSON results.

Usage::

    python -m repro.experiments.runner --figures fig11,fig12 --out results/
    python -m repro.experiments.runner --list
    python -m repro.experiments.runner --all --fast

``--fast`` runs each driver at a reduced scale (sanity-check speed);
without it the drivers run at their report-scale defaults. Every figure
goes through the declarative registry (:mod:`.registry`): the same
``default_config() / run(cfg) / format_rows(result)`` calls for all of
them, with ``--fast`` applied as ``cfg.scaled(**spec.fast_overrides)``
in one place. Results are written one JSON file per figure (result keys
at the top level plus a ``_meta`` block with elapsed time, the
round-engine per-phase timings, and a ``trace`` telemetry summary —
rounds observed, flagged-worker totals, mean reward Gini/share entropy,
and the span-timing table) and printed in the paper's row format.
``--all`` keeps going when a driver fails, prints a per-figure pass/fail
summary, and exits non-zero if anything failed.

Every figure runs under a fresh :class:`repro.monitor.Monitor`: its
alert summary lands in the ``_meta.alerts`` block, post-mortem dumps go
next to the JSON results, and ``--strict`` turns any alert into a
non-zero exit (the CI clean-run gate). A per-figure
:class:`repro.perf.ResourceProbe` adds ``_meta.resources`` (RSS
envelope, GC pauses) and the span stream is folded into ``_meta.perf``
(round wall-time percentiles + the top phase by self time).

Set ``REPRO_TRACE=/path/to/trace.jsonl`` to also stream the full
telemetry trace (spans, mechanism metrics, sim.round events) to a JSONL
file; render it with ``python -m repro.telemetry summarize``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import traceback
from pathlib import Path

from ..monitor import Monitor, MonitorConfig
from ..perf.aggregate import perf_summary
from ..perf.resources import ResourceProbe
from ..telemetry import (
    JsonlSink,
    MemorySink,
    Telemetry,
    get_telemetry,
    profile_delta,
    set_telemetry,
    trace_summary,
)
from .registry import FIGURES, REGISTRY

__all__ = ["FIGURES", "REGISTRY", "run_figure", "main"]


def _jsonable(obj):
    """Recursively convert results (numpy scalars, tuple keys) to JSON."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, float) and obj != obj:  # NaN
        return None
    return obj


def run_figure(fig_id: str, fast: bool = False) -> tuple[dict, list[str]]:
    """Run one figure's driver; returns (result, printable rows)."""
    spec = FIGURES.get(fig_id)
    if spec is None:
        raise ValueError(
            f"unknown figure {fig_id!r}; available: {', '.join(sorted(FIGURES))}"
        )
    return spec.run(fast)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument(
        "--figures", default="", help="comma-separated figure ids (fig04..fig14)"
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--fast", action="store_true", help="reduced scales")
    parser.add_argument("--out", default="", help="directory for JSON results")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if the health monitor raises any alert",
    )
    args = parser.parse_args(argv)

    if args.list:
        for spec in sorted(REGISTRY, key=lambda s: s.fig_id):
            print(f"{spec.fig_id:<12} {spec.title}")
        return 0

    wanted = sorted(FIGURES) if args.all else [
        f.strip() for f in args.figures.split(",") if f.strip()
    ]
    if not wanted:
        parser.error("nothing to run: pass --figures, --all, or --list")
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        parser.error(
            f"unknown figures: {', '.join(unknown)} "
            f"(available: {', '.join(sorted(FIGURES))})"
        )

    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path:
        set_telemetry(Telemetry(sinks=[MemorySink(), JsonlSink(trace_path)]))

    telemetry = get_telemetry()
    status: dict[str, str] = {}
    total_alerts = 0
    for fig_id in wanted:
        before = telemetry.snapshot()
        seq_before = telemetry.seq
        # A fresh health monitor per figure: it watches the hub for the
        # figure's duration (never strict here — the figure must finish
        # so its alerts can be reported; --strict gates the exit code).
        monitor = Monitor(MonitorConfig(
            postmortem_dir=str(out_dir) if out_dir is not None else None,
            run_id=fig_id,
        ))
        # drain events deferred before this figure so the monitor only
        # sees (and attributes alerts to) this figure's slice
        telemetry.flush()
        monitor.install(telemetry)
        # Resource side stream for the figure: one sample before, one
        # after (figures run many rounds internally; the envelope is the
        # headline). Probes never emit into the hub, so REPRO_TRACE
        # output is unchanged by them.
        probe = ResourceProbe()
        probe.sample(None)
        t0 = time.time()
        try:
            result, rows = run_figure(fig_id, fast=args.fast)
        except Exception:
            status[fig_id] = "FAIL"
            print(f"\n=== {fig_id} FAILED ===", file=sys.stderr)
            traceback.print_exc()
            telemetry.flush()
            monitor.dump_postmortem("figure raised")
            monitor.uninstall()
            probe.close()
            total_alerts += len(monitor.alerts)
            continue
        finally:
            telemetry.flush()
            monitor.uninstall()
        elapsed = time.time() - t0
        probe.sample(None)
        probe.close()
        status[fig_id] = "ok"
        total_alerts += len(monitor.alerts)
        print(f"\n=== {fig_id} ({elapsed:.1f}s) ===")
        for row in rows:
            print(row)
        if monitor.alerts:
            print(
                f"[{fig_id}: {len(monitor.alerts)} monitor alert(s): "
                + ", ".join(sorted({a.rule for a in monitor.alerts}))
                + "]",
                file=sys.stderr,
            )
        if out_dir is not None:
            payload = _jsonable(result)
            # This figure's slice of the event stream (seq is monotonic,
            # so the filter survives ring-buffer eviction of older runs).
            fig_events = [
                ev for ev in telemetry.events() if ev["seq"] >= seq_before
            ]
            payload["_meta"] = {
                "figure": fig_id,
                "fast": args.fast,
                "elapsed_s": elapsed,
                "profile": profile_delta(before, telemetry.snapshot()),
                "trace": trace_summary(fig_events),
                "perf": perf_summary(fig_events),
                "resources": probe.summary(),
                "alerts": monitor.alerts_summary(),
            }
            path = out_dir / f"{fig_id}.json"
            path.write_text(json.dumps(payload, indent=2))
            print(f"[saved {path}]")

    failed = [f for f, s in status.items() if s == "FAIL"]
    if len(status) > 1 or failed:
        print("\n--- summary ---")
        for fig_id in wanted:
            print(f"{fig_id:<12} {status[fig_id]}")
    if failed:
        return 1
    if args.strict and total_alerts:
        print(
            f"--strict: {total_alerts} monitor alert(s) across "
            f"{len(wanted)} figure(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
