"""Run paper experiments from the command line and save JSON results.

Usage::

    python -m repro.experiments.runner --figures fig11,fig12 --out results/
    python -m repro.experiments.runner --list
    python -m repro.experiments.runner --all --fast

``--fast`` runs each driver at a reduced scale (sanity-check speed);
without it the drivers run at their report-scale defaults. Results are
written one JSON file per figure plus printed in the paper's row format.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable

from . import (
    arch_comm,
    fault_tolerance,
    fig04_rewards,
    fig05_market,
    fig06_unreliable,
    fig07_attack_damage,
    fig08_cifar_damage,
    fig09_detection,
    fig10_defense,
    fig11_reputation,
    fig12_contribution,
    fig13_cumulative_rewards,
    fig14_punishments,
    noniid,
)

__all__ = ["FIGURES", "run_figure", "main"]


def _fig07(fast: bool) -> tuple[dict, list[str]]:
    cfg = None
    if fast:
        cfg = fig07_attack_damage.default_config().scaled(rounds=10, eval_every=10)
    a = fig07_attack_damage.run_intensity_sweep(cfg)
    b = fig07_attack_damage.run_type_comparison(cfg)
    return {"intensity": a, "types": b}, fig07_attack_damage.format_rows(a, b)


def _fig08(fast: bool) -> tuple[dict, list[str]]:
    cfg = None
    if fast:
        cfg = fig08_cifar_damage.default_config().scaled(rounds=10, eval_every=10)
    r = fig08_cifar_damage.run(cfg)
    return r, fig08_cifar_damage.format_rows(r)


def _fig09(fast: bool) -> tuple[dict, list[str]]:
    kw = {"poison_rates": (0.3, 0.9), "thresholds": (0.0, 0.2)} if fast else {}
    a = fig09_detection.run_accuracy_sweep(**kw)
    b = fig09_detection.run_tradeoff()
    return {"accuracy": a, "tradeoff": b}, fig09_detection.format_rows(a, b)


def _market(mod, fast: bool) -> tuple[dict, list[str]]:
    reps = 5 if fast else 20
    r = mod.run(repetitions=reps, probe_rounds=3 if fast else 4)
    return r, mod.format_rows(r)


def _simple(mod, fast: bool) -> tuple[dict, list[str]]:
    r = mod.run()
    return r, mod.format_rows(r)


#: figure id -> callable(fast) -> (result dict, printable rows)
FIGURES: dict[str, Callable[[bool], tuple[dict, list[str]]]] = {
    "fig04": lambda fast: _market(fig04_rewards, fast),
    "fig05": lambda fast: _market(fig05_market, fast),
    "fig06": lambda fast: _market(fig06_unreliable, fast),
    "fig07": _fig07,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig10": lambda fast: _simple(fig10_defense, fast),
    "fig11": lambda fast: _simple(fig11_reputation, fast),
    "fig12": lambda fast: _simple(fig12_contribution, fast),
    "fig13": lambda fast: _simple(fig13_cumulative_rewards, fast),
    "fig14": lambda fast: _simple(fig14_punishments, fast),
    # extension experiments (not paper figures)
    "ext-comm": lambda fast: _ext_comm(fast),
    "ext-fault": lambda fast: _ext_fault(fast),
    "ext-noniid": lambda fast: _ext_noniid(fast),
}


def _ext_comm(fast: bool) -> tuple[dict, list[str]]:
    r = arch_comm.run(rounds=2 if fast else 5)
    return r, arch_comm.format_rows(r)


def _ext_fault(fast: bool) -> tuple[dict, list[str]]:
    r = fault_tolerance.run(rounds=10 if fast else 24, fail_at=3 if fast else 5)
    return r, fault_tolerance.format_rows(r)


def _ext_noniid(fast: bool) -> tuple[dict, list[str]]:
    r = noniid.run(
        alphas=(100.0, 0.1) if fast else (100.0, 1.0, 0.3, 0.1),
        rounds=6 if fast else 15,
    )
    return r, noniid.format_rows(r)


def _jsonable(obj):
    """Recursively convert results (numpy scalars, tuple keys) to JSON."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, float) and obj != obj:  # NaN
        return None
    return obj


def run_figure(fig_id: str, fast: bool = False) -> tuple[dict, list[str]]:
    """Run one figure's driver; returns (result, printable rows)."""
    if fig_id not in FIGURES:
        raise ValueError(
            f"unknown figure {fig_id!r}; available: {', '.join(sorted(FIGURES))}"
        )
    return FIGURES[fig_id](fast)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument(
        "--figures", default="", help="comma-separated figure ids (fig04..fig14)"
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--fast", action="store_true", help="reduced scales")
    parser.add_argument("--out", default="", help="directory for JSON results")
    args = parser.parse_args(argv)

    if args.list:
        for fig_id in sorted(FIGURES):
            print(fig_id)
        return 0

    wanted = sorted(FIGURES) if args.all else [
        f.strip() for f in args.figures.split(",") if f.strip()
    ]
    if not wanted:
        parser.error("nothing to run: pass --figures, --all, or --list")

    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    for fig_id in wanted:
        t0 = time.time()
        result, rows = run_figure(fig_id, fast=args.fast)
        elapsed = time.time() - t0
        print(f"\n=== {fig_id} ({elapsed:.1f}s) ===")
        for row in rows:
            print(row)
        if out_dir is not None:
            path = out_dir / f"{fig_id}.json"
            path.write_text(json.dumps(_jsonable(result), indent=2))
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
