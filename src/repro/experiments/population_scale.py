"""Extension experiment: cross-device scale via cohort sampling.

The paper's experiments run cross-silo rosters (every worker is a live
object, every worker trains every round). Open federations are
cross-device: a large registered population, a small per-round cohort,
devices that check in probabilistically. This driver exercises the
population-first surface end to end:

* a lazy :class:`~repro.population.WorkerPopulation` registers
  ``population_size`` ids (only sampled cohorts are ever materialized);
* a reputation-weighted :class:`~repro.population.CohortSampler` picks
  each round's cohort, reading the out-of-core reputation store that the
  previous rounds' FIFL verdicts were written back into;
* sparse attacker ids (one in ``ATTACK_STRIDE``) let us check that
  detection still works when an attacker is only *occasionally* sampled.

Tracked outputs: population coverage, live-cohort sizes, skipped rounds,
peak materialized workers (the O(cohort) memory story), reputation-store
footprint, and the attacker/honest mean-reputation gap over the workers
that were actually sampled.
"""

from __future__ import annotations

import numpy as np

from ..core import make_mechanism
from ..fl import FederatedTrainer
from .common import FedExpConfig, build_population, sign_flip

__all__ = ["default_config", "run", "format_rows", "ATTACK_STRIDE"]

#: one worker in every ATTACK_STRIDE ids is a sign-flipping attacker
ATTACK_STRIDE = 50


def default_config() -> FedExpConfig:
    return FedExpConfig(
        dataset="blobs",
        num_workers=8,  # eager-roster floor; the population dwarfs it
        samples_per_worker=80,
        test_samples=200,
        rounds=12,
        eval_every=4,
        gamma=0.3,
        server_ranks=(0, 1),
        population_size=2000,
        cohort_size=24,
        sampler="reputation",
        availability=0.85,
        shard_size=8,
    )


def attacker_roster(cfg: FedExpConfig) -> dict:
    """Sparse sign-flippers: ids ``3, 3+STRIDE, ...`` (servers excluded)."""
    size = cfg.population_size or cfg.num_workers
    return {
        wid: sign_flip(4.0)
        for wid in range(3, size, ATTACK_STRIDE)
        if wid not in cfg.server_ranks
    }


def run(cfg: FedExpConfig | None = None) -> dict:
    cfg = cfg if cfg is not None else default_config()
    attackers = attacker_roster(cfg)
    model, population, test = build_population(cfg, attackers)
    mechanism = make_mechanism(
        "fifl",
        gamma=cfg.gamma,
        engine=cfg.engine,
        shard_size=cfg.shard_size,
    )
    trainer = FederatedTrainer(
        model,
        population=population,
        server_ranks=list(cfg.server_ranks),
        test_data=test,
        mechanism=mechanism,
        server_lr=cfg.server_lr,
        seed=cfg.seed,
        cohort_size=cfg.cohort_size,
        sampler=cfg.sampler,
        fleet_shard_size=cfg.shard_size,
    )
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        history = trainer.run(cfg.rounds, eval_every=cfg.eval_every)

    store = population.reputation_store
    reps = store.as_dict()
    sampled = population._seen  # noqa: SLF001 — introspection, not control
    attacker_reps = [reps[w] for w in sampled if w in attackers and w in reps]
    honest_reps = [
        reps[w]
        for w in sampled
        if w not in attackers and w not in cfg.server_ranks and w in reps
    ]
    cohort_sizes = [len(r.accepted) for r in history.rounds if not r.skipped]
    return {
        "population_size": population.size,
        "cohort_target": cfg.cohort_size,
        "rounds": cfg.rounds,
        "coverage": population.coverage(),
        "seen": population.seen_count,
        "peak_cached": population.cached_count,
        "skipped_rounds": sum(r.skipped for r in history.rounds),
        "mean_cohort": float(np.mean(cohort_sizes)) if cohort_sizes else 0.0,
        "store_chunks": store.touched_chunks,
        "store_bytes": store.nbytes,
        "mean_attacker_rep": float(np.mean(attacker_reps)) if attacker_reps else None,
        "mean_honest_rep": float(np.mean(honest_reps)) if honest_reps else None,
        "final_accuracy": history.final_accuracy(),
    }


def format_rows(result: dict) -> list[str]:
    rows = [
        "Cross-device scale: reputation-weighted cohorts over a lazy population",
        f"  population={result['population_size']}"
        f"  cohort target={result['cohort_target']}"
        f"  mean live cohort={result['mean_cohort']:.1f}"
        f"  skipped rounds={result['skipped_rounds']}",
        f"  coverage={result['coverage']:.3f} ({result['seen']} workers sampled,"
        f" peak materialized={result['peak_cached']})",
        f"  reputation store: {result['store_chunks']} chunks,"
        f" {result['store_bytes']} bytes",
        f"  final accuracy={result['final_accuracy']:.3f}",
    ]
    if result["mean_attacker_rep"] is not None and result["mean_honest_rep"] is not None:
        rows.append(
            f"  mean reputation: honest={result['mean_honest_rep']:.3f}"
            f"  attacker={result['mean_attacker_rep']:.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
