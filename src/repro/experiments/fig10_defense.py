"""Figure 10: the attack-detection module protects the global model.

Accuracy (a) and test loss (b) of training under a high-intensity
sign-flipping attack, with and without the detection module. Paper
observation: without detection the model crashes; with it the model
matches clean training.
"""

from __future__ import annotations

from .common import FedExpConfig, run_federated, sign_flip
from .fig07_attack_damage import default_config

__all__ = ["run", "format_rows"]


def run(
    cfg: FedExpConfig | None = None,
    p_s: float = 10.0,
    num_attackers: int = 2,
) -> dict:
    """Train clean / attacked-undefended / attacked-defended."""
    cfg = cfg if cfg is not None else default_config()
    ids = list(range(2, 2 + num_attackers))
    attackers = {i: sign_flip(p_s) for i in ids}
    out = {}
    clean_hist, _ = run_federated(cfg, {}, with_fifl=False)
    out["clean"] = clean_hist
    undef_hist, _ = run_federated(cfg, attackers, with_fifl=False)
    out["undefended"] = undef_hist
    def_hist, _ = run_federated(cfg, attackers, with_fifl=True)
    out["defended"] = def_hist
    return {
        "accuracy": {k: h.series("test_acc") for k, h in out.items()},
        "loss": {k: h.series("test_loss") for k, h in out.items()},
    }


def _final(series: list) -> float:
    return next(v for v in reversed(series) if v is not None)


def format_rows(result: dict) -> list[str]:
    rows = ["Fig 10: detection module under p_s-intense sign-flip attack"]
    for name in ("clean", "undefended", "defended"):
        rows.append(
            f"  {name:>12}  final_acc={_final(result['accuracy'][name]):.3f}"
            f"  final_loss={_final(result['loss'][name]):.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
