"""Figure 4: reward distribution and attractiveness per quality group.

(a) mean reward of workers in each quality decile, per mechanism;
(b) mean attractiveness (relative reward proportion) per decile.
"""

from __future__ import annotations

import numpy as np

from ..market import MECHANISMS, MarketConfig, MarketSimulator

__all__ = ["run", "format_rows"]


def run(
    repetitions: int = 20,
    num_workers: int = 20,
    probe_rounds: int = 4,
    seed: int = 0,
) -> dict:
    """Compute Fig. 4(a)+(b) series.

    Returns ``{"edges", "rewards": {mech: [per-group]}, "attractiveness":
    {mech: [per-group]}}``.
    """
    sim = MarketSimulator(
        MarketConfig(
            num_workers=num_workers,
            repetitions=repetitions,
            fifl_probe_rounds=probe_rounds,
        ),
        seed=seed,
    )
    rewards, edges = sim.reward_distribution(repetitions=repetitions)
    attractiveness, _ = sim.attractiveness(repetitions=repetitions)
    return {
        "edges": edges,
        "rewards": {m: rewards[m].tolist() for m in MECHANISMS},
        "attractiveness": {m: attractiveness[m].tolist() for m in MECHANISMS},
    }


def format_rows(result: dict) -> list[str]:
    """Paper-style rows: one line per quality group."""
    edges = np.asarray(result["edges"])
    rows = ["Fig 4(a) mean reward share per quality group"]
    header = "group(samples)      " + "  ".join(f"{m:>10}" for m in MECHANISMS)
    rows.append(header)
    for g in range(len(edges) - 1):
        cells = "  ".join(
            f"{result['rewards'][m][g]:>10.4f}" for m in MECHANISMS
        )
        rows.append(f"[{edges[g]:>5.0f},{edges[g+1]:>6.0f})  {cells}")
    rows.append("Fig 4(b) mean attractiveness per quality group")
    rows.append(header)
    for g in range(len(edges) - 1):
        cells = "  ".join(
            f"{result['attractiveness'][m][g]:>10.4f}" for m in MECHANISMS
        )
        rows.append(f"[{edges[g]:>5.0f},{edges[g+1]:>6.0f})  {cells}")
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
