"""Figure 4: reward distribution and attractiveness per quality group.

(a) mean reward of workers in each quality decile, per mechanism;
(b) mean attractiveness (relative reward proportion) per decile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..market import MECHANISMS, MarketConfig, MarketSimulator
from .common import DriverConfig

__all__ = ["Fig04Config", "default_config", "run", "format_rows"]


@dataclass(frozen=True)
class Fig04Config(DriverConfig):
    repetitions: int = 20
    num_workers: int = 20
    probe_rounds: int = 4
    seed: int = 0


def default_config() -> Fig04Config:
    return Fig04Config()


def run(cfg: Fig04Config | None = None, **overrides) -> dict:
    """Compute Fig. 4(a)+(b) series.

    Returns ``{"edges", "rewards": {mech: [per-group]}, "attractiveness":
    {mech: [per-group]}}``. Keyword overrides are applied on top of
    ``cfg`` (or the default config) via ``cfg.scaled``.
    """
    cfg = (cfg if cfg is not None else default_config()).scaled(**overrides)
    repetitions = cfg.repetitions
    sim = MarketSimulator(
        MarketConfig(
            num_workers=cfg.num_workers,
            repetitions=cfg.repetitions,
            fifl_probe_rounds=cfg.probe_rounds,
        ),
        seed=cfg.seed,
    )
    rewards, edges = sim.reward_distribution(repetitions=repetitions)
    attractiveness, _ = sim.attractiveness(repetitions=repetitions)
    return {
        "edges": edges,
        "rewards": {m: rewards[m].tolist() for m in MECHANISMS},
        "attractiveness": {m: attractiveness[m].tolist() for m in MECHANISMS},
    }


def format_rows(result: dict) -> list[str]:
    """Paper-style rows: one line per quality group."""
    edges = np.asarray(result["edges"])
    rows = ["Fig 4(a) mean reward share per quality group"]
    header = "group(samples)      " + "  ".join(f"{m:>10}" for m in MECHANISMS)
    rows.append(header)
    for g in range(len(edges) - 1):
        cells = "  ".join(
            f"{result['rewards'][m][g]:>10.4f}" for m in MECHANISMS
        )
        rows.append(f"[{edges[g]:>5.0f},{edges[g+1]:>6.0f})  {cells}")
    rows.append("Fig 4(b) mean attractiveness per quality group")
    rows.append(header)
    for g in range(len(edges) - 1):
        cells = "  ".join(
            f"{result['attractiveness'][m][g]:>10.4f}" for m in MECHANISMS
        )
        rows.append(f"[{edges[g]:>5.0f},{edges[g+1]:>6.0f})  {cells}")
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
