"""Experiment drivers: one module per paper figure (see DESIGN.md index).

Every driver implements the uniform protocol ``default_config() ->
Config`` / ``run(cfg) -> dict`` / ``format_rows(result) -> list[str]``;
the CLI runner executes any of them through :mod:`.registry`.
"""

from . import (
    arch_comm,
    fault_tolerance,
    fig04_rewards,
    fig05_market,
    fig06_unreliable,
    fig07_attack_damage,
    fig08_cifar_damage,
    fig09_detection,
    fig10_defense,
    fig11_reputation,
    fig12_contribution,
    fig13_cumulative_rewards,
    fig14_punishments,
    noniid,
    population_scale,
    sim_churn,
    sim_stragglers,
)
from . import registry
from .common import (
    AttackerSpec,
    DriverConfig,
    FedExpConfig,
    FigureConfig,
    build_federation,
    build_population,
    data_poison,
    probabilistic,
    run_federated,
    sign_flip,
)
from .registry import FIGURES, REGISTRY, FigureSpec

__all__ = [
    "AttackerSpec",
    "DriverConfig",
    "FigureConfig",
    "FigureSpec",
    "REGISTRY",
    "FIGURES",
    "registry",
    "FedExpConfig",
    "build_federation",
    "build_population",
    "run_federated",
    "sign_flip",
    "data_poison",
    "probabilistic",
    "arch_comm",
    "fault_tolerance",
    "fig04_rewards",
    "fig05_market",
    "fig06_unreliable",
    "fig07_attack_damage",
    "fig08_cifar_damage",
    "fig09_detection",
    "fig10_defense",
    "fig11_reputation",
    "fig12_contribution",
    "fig13_cumulative_rewards",
    "fig14_punishments",
    "noniid",
    "population_scale",
    "sim_churn",
    "sim_stragglers",
]
