"""Figure 14: punishments grow with sign-flipping attack intensity.

Sign-flipping attackers with p_s in {2, 4, 6, 8} train alongside honest
workers; cumulative punishment (negative cumulative reward) is ordered by
attack intensity.
"""

from __future__ import annotations

import numpy as np

from .common import FedExpConfig, run_federated, sign_flip

__all__ = ["run", "format_rows"]

PAPER_INTENSITIES = (2.0, 4.0, 6.0, 8.0)


def default_config() -> FedExpConfig:
    return FedExpConfig(
        dataset="blobs",
        num_workers=8,
        samples_per_worker=150,
        test_samples=200,
        rounds=25,
        eval_every=25,
        server_ranks=(0, 1),
        # punishments require the rejected gradients to still be scored by
        # the contribution module; detection stays on to protect the model
        detection_threshold=0.0,
    )


def run(
    cfg: FedExpConfig | None = None,
    intensities: tuple[float, ...] = PAPER_INTENSITIES,
) -> dict:
    """Cumulative punishments per attack intensity."""
    cfg = cfg if cfg is not None else default_config()
    if len(intensities) + 2 > cfg.num_workers:
        raise ValueError("not enough worker slots")
    ids = list(range(cfg.num_workers - len(intensities), cfg.num_workers))
    attackers = {i: sign_flip(p_s) for i, p_s in zip(ids, intensities)}
    _, mech = run_federated(cfg, attackers, with_fifl=True)
    assert mech is not None
    cumulative = {}
    for i, p_s in zip(ids, intensities):
        per_round = [rec.rewards.get(i, 0.0) for rec in mech.records]
        cumulative[p_s] = np.cumsum(per_round).tolist()
    finals = {p_s: traj[-1] for p_s, traj in cumulative.items()}
    return {"cumulative": cumulative, "finals": finals}


def format_rows(result: dict) -> list[str]:
    rows = ["Fig 14: cumulative punishment by sign-flip intensity p_s"]
    for p_s, final in result["finals"].items():
        rows.append(f"  p_s={p_s:.1f}  cumulative reward={final:+.3f}")
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
