"""Figure 6: system revenue under attacks, relative to FIFL.

Sweeps the attack degree ℧; 38.5% of workers are unreliable (the paper's
representative real-world fraction). FIFL's detection excludes attackers;
the baselines pay and aggregate them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..market import MECHANISMS, MarketConfig, MarketSimulator
from .common import DriverConfig

__all__ = ["Fig06Config", "default_config", "run", "format_rows"]

PAPER_DEGREES = (0.05, 0.15, 0.25, 0.385)


@dataclass(frozen=True)
class Fig06Config(DriverConfig):
    attack_degrees: tuple[float, ...] = PAPER_DEGREES
    unreliable_fraction: float = 0.385
    repetitions: int = 20
    probe_rounds: int = 4
    detection_rate: float = 1.0
    seed: int = 0


def default_config() -> Fig06Config:
    return Fig06Config()


def run(cfg: Fig06Config | None = None, **overrides) -> dict:
    """Revenue of every mechanism relative to FIFL per attack degree."""
    cfg = (cfg if cfg is not None else default_config()).scaled(**overrides)
    sim = MarketSimulator(
        MarketConfig(
            repetitions=cfg.repetitions, fifl_probe_rounds=cfg.probe_rounds
        ),
        seed=cfg.seed,
    )
    rel = sim.unreliable_revenues(
        attack_degrees=cfg.attack_degrees,
        unreliable_fraction=cfg.unreliable_fraction,
        repetitions=cfg.repetitions,
        detection_rate=cfg.detection_rate,
    )
    # also express "FIFL outperforms X by" as the paper quotes it
    outperform = {
        d: {
            m: (100.0 * -row[m] / (100.0 + row[m]) if row[m] > -100.0 else float("inf"))
            for m in MECHANISMS
            if m != "fifl"
        }
        for d, row in rel.items()
    }
    return {"relative_revenue": rel, "fifl_outperforms_by": outperform}


def format_rows(result: dict) -> list[str]:
    rows = ["Fig 6: system revenue relative to FIFL (%) by attack degree"]
    rows.append(
        f"{'degree':>7} " + " ".join(f"{m:>11}" for m in MECHANISMS)
    )
    for degree, row in result["relative_revenue"].items():
        cells = " ".join(f"{row[m]:>11.2f}" for m in MECHANISMS)
        rows.append(f"{degree:>7.3f} {cells}")
    rows.append("FIFL outperforms baselines by (%):")
    for degree, row in result["fifl_outperforms_by"].items():
        cells = " ".join(f"{m}={row[m]:.1f}%" for m in row)
        rows.append(f"  degree {degree}: {cells}")
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
