"""Extension experiment: detection under non-iid data (S4.1's premise).

The paper's detection module assumes "the attacker's gradient deviation
[is] much greater than the deviation caused by non-iid data". This
experiment quantifies that premise: federations with increasingly skewed
Dirichlet label distributions (smaller α = more skew) train under FIFL
detection, with and without attackers, and we measure

* the honest false-rejection rate (how often non-iid deviation alone
  trips the detector), and
* the attacker rejection rate (whether attacks still stand out).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import make_mechanism
from ..datasets import dirichlet_partition, make_blobs, train_test_split
from ..fl import FederatedTrainer, HonestWorker, SignFlippingWorker
from ..metrics import aggregate_confusion, confusion
from ..nn import build_logreg
from .common import DriverConfig

__all__ = ["NonIIDConfig", "default_config", "run", "format_rows"]

_N_FEATURES, _N_CLASSES = 16, 4


@dataclass(frozen=True)
class NonIIDConfig(DriverConfig):
    alphas: tuple[float, ...] = (100.0, 1.0, 0.3, 0.1)
    num_workers: int = 8
    attacker_ids: tuple[int, ...] = (6, 7)
    p_s: float = 4.0
    rounds: int = 15
    threshold: float = 0.0
    seed: int = 0


def default_config() -> NonIIDConfig:
    return NonIIDConfig()


def run(cfg: NonIIDConfig | None = None, **overrides) -> dict:
    """Detection quality per Dirichlet skew level."""
    cfg = (cfg if cfg is not None else default_config()).scaled(**overrides)
    alphas, num_workers, attacker_ids = cfg.alphas, cfg.num_workers, cfg.attacker_ids
    p_s, rounds, threshold, seed = cfg.p_s, cfg.rounds, cfg.threshold, cfg.seed
    if not alphas:
        raise ValueError("need at least one alpha")
    out: dict[float, dict[str, float]] = {}
    for alpha in alphas:
        data = make_blobs(
            n_samples=1800, n_features=_N_FEATURES, num_classes=_N_CLASSES, seed=seed
        )
        train, test = train_test_split(data, 0.2, seed=seed)
        shards = dirichlet_partition(train, num_workers, alpha=alpha, seed=seed)
        model_fn = lambda: build_logreg(_N_FEATURES, _N_CLASSES, seed=seed)
        workers = []
        for i in range(num_workers):
            if i in attacker_ids:
                workers.append(
                    SignFlippingWorker(i, shards[i], model_fn, lr=0.1, p_s=p_s,
                                       seed=seed + 100 + i)
                )
            else:
                workers.append(
                    HonestWorker(i, shards[i], model_fn, lr=0.1, seed=seed + 100 + i)
                )
        mech = make_mechanism("fifl", threshold=threshold, gamma=0.3)
        trainer = FederatedTrainer(
            model_fn(), workers, [0, 1], test_data=test,
            mechanism=mech, server_lr=0.1, seed=seed,
        )
        history = trainer.run(rounds, eval_every=rounds)
        truth = {i: (i not in attacker_ids) for i in range(num_workers)}
        counts = aggregate_confusion(
            [confusion(rec.accepted, truth) for rec in mech.records]
        )
        out[alpha] = {
            "honest_false_reject": 1.0 - counts.tp_rate,
            "attacker_reject": counts.tn_rate,
            "final_acc": history.final_accuracy(),
        }
    return {"by_alpha": out, "threshold": threshold}


def format_rows(result: dict) -> list[str]:
    rows = [
        f"Detection under non-iid data (Dirichlet skew; S_y={result['threshold']})"
    ]
    rows.append(
        f"{'alpha':>8} {'honest false-reject':>20} {'attacker reject':>16} {'acc':>6}"
    )
    for alpha, r in result["by_alpha"].items():
        rows.append(
            f"{alpha:>8.2f} {r['honest_false_reject']:>20.3f} "
            f"{r['attacker_reject']:>16.3f} {r['final_acc']:>6.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
