"""Figure 5: market attraction and relative system revenue (reliable).

(a) percentage of population data attracted by each mechanism;
(b) system revenue of each mechanism relative to FIFL (percent).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..market import MECHANISMS, MarketConfig, MarketSimulator
from .common import DriverConfig

__all__ = ["Fig05Config", "default_config", "run", "format_rows"]


@dataclass(frozen=True)
class Fig05Config(DriverConfig):
    """Full paper scale: repetitions=100, iterations=500."""

    repetitions: int = 20
    iterations: int = 100
    probe_rounds: int = 4
    seed: int = 0


def default_config() -> Fig05Config:
    return Fig05Config()


def run(cfg: Fig05Config | None = None, **overrides) -> dict:
    """Compute Fig. 5 quantities."""
    cfg = (cfg if cfg is not None else default_config()).scaled(**overrides)
    sim = MarketSimulator(
        MarketConfig(
            repetitions=cfg.repetitions,
            iterations=cfg.iterations,
            fifl_probe_rounds=cfg.probe_rounds,
        ),
        seed=cfg.seed,
    )
    out = sim.simulate_market()
    return {
        "data_share": out.data_share,
        "relative_revenue": out.relative_revenue,
    }


def format_rows(result: dict) -> list[str]:
    rows = ["Fig 5(a) fraction of data attracted / 5(b) revenue vs FIFL (%)"]
    rows.append(f"{'mechanism':>12} {'data share':>12} {'rel revenue %':>14}")
    for m in MECHANISMS:
        rows.append(
            f"{m:>12} {result['data_share'][m]:>12.4f} "
            f"{result['relative_revenue'][m]:>14.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
