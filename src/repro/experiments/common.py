"""Shared experiment machinery: image federations with mixed worker types.

The module-effectiveness experiments (Figs. 7-14) all share one setup:
N workers over an image-classification task (the paper: MNIST+LeNet and
CIFAR10+ResNet; here the synthetic stand-ins), some workers replaced by
attackers. :func:`build_federation` constructs it from a config plus an
attacker roster, and :func:`run_federated` executes training with or
without the FIFL mechanism.

Scale note: defaults are laptop-benchmark sized (smaller images / fewer
rounds than the paper's 500); every knob is in :class:`FedExpConfig` so
the full-scale run is one config away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable

import numpy as np

from ..core import FIFLMechanism, make_mechanism
from ..datasets import (
    Dataset,
    iid_partition,
    make_blobs,
    make_cifar10_like,
    make_mnist_like,
    train_test_split,
)
from ..fl import (
    FederatedTrainer,
    HonestWorker,
    TrainingHistory,
    Worker,
)
from ..fl.workers import WorkerSpec, make_worker
from ..nn import Sequential, build_lenet, build_logreg, build_mini_resnet
from ..population import WorkerPopulation
from ..sim import FaultScenario

__all__ = [
    "AttackerSpec",
    "sign_flip",
    "data_poison",
    "probabilistic",
    "DriverConfig",
    "FigureConfig",
    "FedExpConfig",
    "build_federation",
    "build_population",
    "run_federated",
]


@dataclass(frozen=True)
class DriverConfig:
    """Base for figure-driver configs (the unified driver protocol).

    Every experiment driver exposes ``default_config() -> Config``,
    ``run(cfg) -> dict`` and ``format_rows(result) -> list[str]``; the
    runner's registry scales any config the same way: ``cfg.scaled(...)``.
    """

    def scaled(self, **overrides) -> "DriverConfig":
        """Copy with overrides (unknown keywords raise)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class FigureConfig(DriverConfig):
    """Driver config that wraps a :class:`FedExpConfig` as ``fed``.

    ``scaled`` routes overrides by name: fields of the figure config are
    applied directly, everything else is forwarded into ``fed.scaled``
    — so ``cfg.scaled(rounds=10, thresholds=(0.0,))`` adjusts both
    layers in one call.
    """

    def scaled(self, **overrides) -> "FigureConfig":
        own = {f.name for f in fields(self)} - {"fed"}
        top = {k: v for k, v in overrides.items() if k in own}
        fed_kw = {k: v for k, v in overrides.items() if k not in own}
        cfg = replace(self, **top) if top else self
        if fed_kw:
            cfg = replace(cfg, fed=cfg.fed.scaled(**fed_kw))
        return cfg


@dataclass(frozen=True)
class AttackerSpec:
    """Which attacker class (and parameters) replaces a worker slot."""

    kind: str  # "sign" | "poison" | "prob"
    params: tuple = ()

    def to_spec(self) -> WorkerSpec:
        """The declarative :class:`WorkerSpec` this shorthand names."""
        if self.kind == "sign":
            (p_s,) = self.params
            return WorkerSpec("sign", {"p_s": p_s})
        if self.kind == "poison":
            (p_d,) = self.params
            return WorkerSpec("poison", {"p_d": p_d})
        if self.kind == "prob":
            p_a, p_s = self.params
            return WorkerSpec("prob", {"p_a": p_a, "p_s": p_s})
        raise ValueError(f"unknown attacker kind {self.kind!r}")

    def build(self, *args, seed: int = 0, **kwargs) -> Worker:
        return make_worker(self.to_spec(), *args, seed=seed, **kwargs)


def sign_flip(p_s: float) -> AttackerSpec:
    """Sign-flipping attacker with intensity ``p_s`` (paper S5.1)."""
    return AttackerSpec("sign", (p_s,))


def data_poison(p_d: float) -> AttackerSpec:
    """Data-poison attacker with label error rate ``p_d``."""
    return AttackerSpec("poison", (p_d,))


def probabilistic(p_a: float, p_s: float = 4.0) -> AttackerSpec:
    """Attacker that misbehaves with probability ``p_a`` each round."""
    return AttackerSpec("prob", (p_a, p_s))


@dataclass
class FedExpConfig:
    """Configuration of one module-effectiveness experiment."""

    dataset: str = "mnist"  # "mnist" | "cifar10" | "blobs"
    num_workers: int = 10
    samples_per_worker: int = 200
    test_samples: int = 400
    image_size: int = 14  # paper: 28 (MNIST) / 32 (CIFAR10)
    # blobs-mode knobs (fast mechanism-only experiments)
    n_features: int = 16
    n_classes: int = 4
    rounds: int = 20
    eval_every: int = 2
    lr: float = 0.05
    server_lr: float = 0.05
    batch_size: int = 32
    local_iters: int = 1
    server_ranks: tuple[int, ...] = (0, 1)
    drop_prob: float = 0.0
    seed: int = 0
    # FIFL settings (used when with_fifl=True)
    detection_threshold: float = 0.0
    detection_mode: str = "cosine"
    gamma: float = 0.2
    contribution_baseline: str = "zero"
    reference_worker: int | None = None
    contribution_filter: bool = False
    contribution_reference: str = "aggregate"
    # round-engine selection: "vectorized" (batched kernels) or "scalar"
    # (the reference per-worker loops, kept for differential testing)
    engine: str = "vectorized"
    # local-training engine: "fleet" (all workers' SGD batched into
    # stacked kernels) or "scalar" (per-worker reference loop)
    local_engine: str = "fleet"
    # fault/timing scenario: None runs the direct (instantaneous) loop;
    # a FaultScenario moves uploads onto the discrete-event kernel
    scenario: FaultScenario | None = None
    # -- population-first surface (cross-device scale) --------------------
    # population_size > num_workers registers that many worker ids and
    # materializes them lazily (dataset must be "blobs"); None keeps the
    # eager cross-silo roster of exactly num_workers workers
    population_size: int | None = None
    # per-round cohort size and sampler name ("uniform" | "reputation" |
    # "available"); both None = static full-population rounds
    cohort_size: int | None = None
    sampler: str | None = None
    # per-round device check-in probability (1.0 = always available)
    availability: float = 1.0
    # shard streaming: bound round-kernel and fleet temporaries by this
    # many workers per shard (None = whole cohort at once)
    shard_size: int | None = None
    # execution backend for the fleet GEMMs and sharded round kernels:
    # "serial" | "thread" | "process" (repro.parallel). One pool is owned
    # by the trainer and shared with the mechanism; every backend is
    # byte-identical to serial, so this is purely a throughput knob.
    backend: str = "serial"
    max_workers: int | None = None

    def scaled(self, **overrides) -> "FedExpConfig":
        """Copy with overrides (e.g. full-paper scale)."""
        return replace(self, **overrides)


def _make_model(cfg: FedExpConfig) -> Sequential:
    if cfg.dataset == "blobs":
        return build_logreg(cfg.n_features, cfg.n_classes, seed=cfg.seed)
    if cfg.dataset == "mnist":
        return build_lenet(
            num_classes=10, in_channels=1, image_size=cfg.image_size, seed=cfg.seed
        )
    if cfg.dataset == "cifar10":
        return build_mini_resnet(
            num_classes=10, in_channels=3, width=8, num_blocks=1, seed=cfg.seed
        )
    raise ValueError(f"unknown dataset {cfg.dataset!r}")


def _make_data(cfg: FedExpConfig) -> Dataset:
    total = cfg.num_workers * cfg.samples_per_worker + cfg.test_samples
    if cfg.dataset == "blobs":
        return make_blobs(
            n_samples=total,
            n_features=cfg.n_features,
            num_classes=cfg.n_classes,
            seed=cfg.seed,
        )
    if cfg.dataset == "mnist":
        return make_mnist_like(
            n_samples=total, image_size=cfg.image_size, seed=cfg.seed
        )
    if cfg.dataset == "cifar10":
        return make_cifar10_like(
            n_samples=total, image_size=cfg.image_size, seed=cfg.seed
        )
    raise ValueError(f"unknown dataset {cfg.dataset!r}")


def build_federation(
    cfg: FedExpConfig,
    attackers: dict[int, AttackerSpec] | None = None,
) -> tuple[Sequential, list[Worker], Dataset]:
    """Construct (global model, workers, test set) for one experiment.

    ``attackers`` maps worker ids to attacker specs; remaining workers are
    honest. Data is uniformly (iid) distributed, matching S5.3.1.
    """
    attackers = attackers or {}
    bad = set(attackers) - set(range(cfg.num_workers))
    if bad:
        raise ValueError(f"attacker ids {sorted(bad)} out of range")
    data = _make_data(cfg)
    test_fraction = cfg.test_samples / len(data)
    train, test = train_test_split(data, test_fraction, seed=cfg.seed)
    shards = iid_partition(train, cfg.num_workers, seed=cfg.seed)

    def model_fn() -> Sequential:
        return _make_model(cfg)

    workers: list[Worker] = []
    for wid in range(cfg.num_workers):
        common = dict(
            lr=cfg.lr,
            batch_size=cfg.batch_size,
            local_iters=cfg.local_iters,
        )
        if wid in attackers:
            workers.append(
                attackers[wid].build(
                    wid, shards[wid], model_fn, seed=cfg.seed + 1000 + wid, **common
                )
            )
        else:
            workers.append(
                HonestWorker(
                    wid, shards[wid], model_fn, seed=cfg.seed + 1000 + wid, **common
                )
            )
    return _make_model(cfg), workers, test


def build_population(
    cfg: FedExpConfig,
    attackers: dict[int, AttackerSpec] | None = None,
) -> tuple[Sequential, WorkerPopulation, Dataset]:
    """Construct (global model, population, test set) for one experiment.

    With ``population_size`` unset (or equal to ``num_workers``) this is
    the eager roster of :func:`build_federation` wrapped via
    :meth:`WorkerPopulation.from_workers` — same workers, same data, same
    seeds. A larger ``population_size`` switches to lazy per-worker
    recipes: worker datasets are derived on demand from the id (blobs
    only — the shared class prototypes are re-drawn from ``cfg.seed``
    exactly as :func:`make_blobs` would), so registering 10^6 ids costs
    O(1) per id and only sampled cohorts are ever materialized.
    """
    attackers = attackers or {}
    if cfg.population_size is None or cfg.population_size == cfg.num_workers:
        model, workers, test = build_federation(cfg, attackers)
        return (
            model,
            WorkerPopulation.from_workers(workers, availability=cfg.availability),
            test,
        )
    if cfg.population_size < cfg.num_workers:
        raise ValueError("population_size must be >= num_workers")
    if cfg.dataset != "blobs":
        raise ValueError(
            "population_size > num_workers needs dataset='blobs' "
            "(the only dataset with a lazy per-worker recipe)"
        )
    size = cfg.population_size
    # membership test per attacker id, not set(range(size)) — that
    # materializes O(population) ints just to validate a handful of keys
    bad = [wid for wid in attackers if not 0 <= wid < size]
    if bad:
        raise ValueError(f"attacker ids {sorted(bad)} out of range")
    # Shared class prototypes: the same first draw make_blobs makes from
    # this seed, so lazy shards live in the same feature geometry as the
    # eager path (per-worker labels/noise come from private streams).
    protos = np.random.default_rng(cfg.seed).normal(
        size=(cfg.n_classes, cfg.n_features)
    )
    signal, noise = 2.0, 1.0  # make_blobs defaults

    def blob_shard(rng: np.random.Generator, n: int) -> Dataset:
        y = rng.integers(0, cfg.n_classes, size=n)
        x = signal * protos[y] + noise * rng.normal(size=(n, cfg.n_features))
        return Dataset(x, y, cfg.n_classes, "blobs")

    def data_fn(wid: int) -> Dataset:
        return blob_shard(
            np.random.default_rng((cfg.seed, 0xDA7A, wid)),
            cfg.samples_per_worker,
        )

    test = blob_shard(
        np.random.default_rng((cfg.seed, 0x7E57)), cfg.test_samples
    )
    population = WorkerPopulation(
        size,
        data_fn=data_fn,
        model_fn=lambda: _make_model(cfg),
        spec_fn={wid: spec.to_spec() for wid, spec in attackers.items()},
        seed=cfg.seed,
        worker_kwargs=dict(
            lr=cfg.lr, batch_size=cfg.batch_size, local_iters=cfg.local_iters
        ),
        availability=cfg.availability,
    )
    return _make_model(cfg), population, test


def run_federated(
    cfg: FedExpConfig,
    attackers: dict[int, AttackerSpec] | None = None,
    with_fifl: bool = False,
    ledger=None,
) -> tuple[TrainingHistory, FIFLMechanism | None]:
    """Train one federation; returns the history and mechanism (if any)."""
    model, population, test = build_population(cfg, attackers)
    mechanism = None
    if with_fifl:
        mechanism = make_mechanism(
            "fifl",
            ledger=ledger,
            threshold=cfg.detection_threshold,
            mode=cfg.detection_mode,
            gamma=cfg.gamma,
            contribution_baseline=cfg.contribution_baseline,
            reference_worker=cfg.reference_worker,
            contribution_filter=cfg.contribution_filter,
            contribution_reference=cfg.contribution_reference,
            engine=cfg.engine,
            shard_size=cfg.shard_size,
        )
    trainer = FederatedTrainer(
        model,
        population=population,
        server_ranks=list(cfg.server_ranks),
        test_data=test,
        mechanism=mechanism,
        server_lr=cfg.server_lr,
        drop_prob=cfg.drop_prob,
        seed=cfg.seed,
        local_engine=cfg.local_engine,
        scenario=cfg.scenario,
        cohort_size=cfg.cohort_size,
        sampler=cfg.sampler,
        fleet_shard_size=cfg.shard_size,
        backend=cfg.backend,
        max_workers=cfg.max_workers,
    )
    # High-intensity attacks legitimately blow the model up (the paper:
    # "loss becomes NaN" at p_s >= 10); silence the float warnings so the
    # crash shows up as chance-level accuracy, not console spam.
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        history = trainer.run(cfg.rounds, eval_every=cfg.eval_every)
    return history, mechanism
