"""Figure 9: detection threshold S_y — accuracy and the TP/TN trade-off.

(a) detection accuracy vs attack deviation for several thresholds S_y;
(b) the trade-off as S_y rises: honest-acceptance rate (the metrics
    module's ``tp_rate``) falls while attacker-rejection rate
    (``tn_rate``) rises.

Deviation degree: the paper sweeps sign-flip intensity; with the
scale-free cosine score a sign-flipped gradient sits at exactly -1
regardless of intensity (see the ablation bench), so for the threshold
study we sweep *data-poison rates* — deviation that actually moves the
score continuously across the threshold, which is the regime Fig. 9
studies. Sign-flip columns are included to show they are always caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import aggregate_confusion, confusion
from .common import FedExpConfig, FigureConfig, data_poison, run_federated, sign_flip

__all__ = [
    "Fig09Config",
    "default_config",
    "run",
    "run_accuracy_sweep",
    "run_tradeoff",
    "format_rows",
]

DEFAULT_POISON_RATES = (0.3, 0.5, 0.7, 0.9)
DEFAULT_THRESHOLDS = (0.0, 0.1, 0.2, 0.3)


def _default_fed() -> FedExpConfig:
    # Small local batches make honest gradients noisy enough that the
    # threshold trade-off is visible (batch 8 of ~150 local samples).
    return FedExpConfig(
        dataset="blobs",
        num_workers=8,
        samples_per_worker=150,
        test_samples=200,
        rounds=12,
        eval_every=12,
        batch_size=8,
        server_ranks=(0, 1),
    )


@dataclass(frozen=True)
class Fig09Config(FigureConfig):
    """Both panels' sweep grids plus the shared federation config."""

    fed: FedExpConfig = field(default_factory=_default_fed)
    poison_rates: tuple[float, ...] = DEFAULT_POISON_RATES
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS
    tradeoff_thresholds: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    tradeoff_poison_rate: float = 0.5
    num_attackers: int = 2


def default_config() -> Fig09Config:
    return Fig09Config()


def _truth_from_history(history, attacker_ids: set[int]) -> list:
    """Per-round honest-truth maps (attack flag is per-round ground truth)."""
    # The trainer does not store per-round attack flags directly; for the
    # attacker types used here the flag is static per worker.
    return [
        {w: (w not in attacker_ids) for w in rec.accepted}
        for rec in history.rounds
    ]


def _sweep_once(cfg: FedExpConfig, attackers, threshold: float):
    cfg = cfg.scaled(detection_threshold=threshold)
    history, _ = run_federated(cfg, attackers, with_fifl=True)
    truth = _truth_from_history(history, set(attackers))
    per_round = [
        confusion(rec.accepted, t) for rec, t in zip(history.rounds, truth)
    ]
    return aggregate_confusion(per_round)


def run_accuracy_sweep(
    cfg: FedExpConfig | None = None,
    poison_rates: tuple[float, ...] = DEFAULT_POISON_RATES,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    num_attackers: int = 2,
) -> dict:
    """Fig. 9(a): detection accuracy per (deviation degree, S_y)."""
    cfg = cfg if cfg is not None else _default_fed()
    ids = list(range(2, 2 + num_attackers))
    table: dict[float, dict[float, float]] = {}
    for s_y in thresholds:
        table[s_y] = {}
        for p_d in poison_rates:
            attackers = {i: data_poison(p_d) for i in ids}
            counts = _sweep_once(cfg, attackers, s_y)
            table[s_y][p_d] = counts.accuracy
    # sign-flip reference: caught at any threshold >= 0
    sign_ref = {}
    for p_s in (2.0, 8.0):
        counts = _sweep_once(cfg, {i: sign_flip(p_s) for i in ids}, 0.0)
        sign_ref[p_s] = counts.tn_rate
    return {"accuracy": table, "sign_flip_tn_rate": sign_ref}


def run_tradeoff(
    cfg: FedExpConfig | None = None,
    thresholds: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    p_d: float = 0.5,
    num_attackers: int = 2,
) -> dict:
    """Fig. 9(b): tp_rate (honest accepted) vs tn_rate (attackers rejected)."""
    cfg = cfg if cfg is not None else _default_fed()
    ids = list(range(2, 2 + num_attackers))
    attackers = {i: data_poison(p_d) for i in ids}
    tp, tn = {}, {}
    for s_y in thresholds:
        counts = _sweep_once(cfg, attackers, s_y)
        tp[s_y] = counts.tp_rate
        tn[s_y] = counts.tn_rate
    return {"tp_rate": tp, "tn_rate": tn}


def run(cfg: Fig09Config | None = None, **overrides) -> dict:
    """Unified driver entry: both panels under one config.

    Returns ``{"accuracy": <9(a) result>, "tradeoff": <9(b) result>}``.
    A bare :class:`FedExpConfig` is accepted and wrapped with the default
    sweep grids.
    """
    cfg = cfg if cfg is not None else default_config()
    if isinstance(cfg, FedExpConfig):
        cfg = Fig09Config(fed=cfg)
    if overrides:
        cfg = cfg.scaled(**overrides)
    a = run_accuracy_sweep(
        cfg.fed,
        poison_rates=cfg.poison_rates,
        thresholds=cfg.thresholds,
        num_attackers=cfg.num_attackers,
    )
    b = run_tradeoff(
        cfg.fed,
        thresholds=cfg.tradeoff_thresholds,
        p_d=cfg.tradeoff_poison_rate,
        num_attackers=cfg.num_attackers,
    )
    return {"accuracy": a, "tradeoff": b}


def format_rows(result: dict, result_b: dict | None = None) -> list[str]:
    """Paper rows from a combined :func:`run` result (or the two legacy
    per-panel dicts passed separately)."""
    if result_b is not None:
        result = {"accuracy": result, "tradeoff": result_b}
    result_a, result_b = result["accuracy"], result["tradeoff"]
    rows = ["Fig 9(a) detection accuracy by deviation degree p_d and S_y"]
    for s_y, by_rate in result_a["accuracy"].items():
        cells = "  ".join(f"p_d={p:.1f}:{acc:.3f}" for p, acc in by_rate.items())
        rows.append(f"  S_y={s_y:.2f}  {cells}")
    rows.append(
        "  sign-flip TN rate: "
        + "  ".join(f"p_s={p}:{r:.3f}" for p, r in result_a["sign_flip_tn_rate"].items())
    )
    rows.append("Fig 9(b) TP/TN trade-off vs S_y")
    for s_y in result_b["tp_rate"]:
        rows.append(
            f"  S_y={s_y:.2f}  honest-accept={result_b['tp_rate'][s_y]:.3f}"
            f"  attacker-reject={result_b['tn_rate'][s_y]:.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
