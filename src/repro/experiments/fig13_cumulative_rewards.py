"""Figure 13: cumulative rewards/punishments by data quality.

Same setup as Fig. 12 (graded data-poison rates, b_h at the p_d = 0.2
worker); here we track cumulative rewards. Workers better than the
threshold accumulate positive rewards, worse ones accumulate punishment,
and both are ordered by quality.
"""

from __future__ import annotations

import numpy as np

from .common import FedExpConfig, data_poison, run_federated
from .fig12_contribution import PAPER_POISON_RATES, default_config

__all__ = ["run", "format_rows"]


def run(
    cfg: FedExpConfig | None = None,
    poison_rates: tuple[float, ...] = PAPER_POISON_RATES,
    threshold_rate: float = 0.2,
) -> dict:
    """Cumulative reward trajectories per quality grade."""
    cfg = cfg if cfg is not None else default_config()
    if len(poison_rates) + 2 > cfg.num_workers:
        raise ValueError("not enough worker slots")
    ids = list(range(cfg.num_workers - len(poison_rates), cfg.num_workers))
    attackers = {i: data_poison(p_d) for i, p_d in zip(ids, poison_rates)}
    reference_id = ids[poison_rates.index(threshold_rate)]
    cfg = cfg.scaled(reference_worker=reference_id)
    _, mech = run_federated(cfg, attackers, with_fifl=True)
    assert mech is not None
    cumulative: dict[float, list[float]] = {}
    for i, p_d in zip(ids, poison_rates):
        per_round = [rec.rewards.get(i, 0.0) for rec in mech.records]
        cumulative[p_d] = np.cumsum(per_round).tolist()
    finals = {p_d: traj[-1] for p_d, traj in cumulative.items()}
    return {
        "cumulative": cumulative,
        "finals": finals,
        "threshold_rate": threshold_rate,
    }


def format_rows(result: dict) -> list[str]:
    rows = [
        f"Fig 13: cumulative rewards by mislabel rate p_d "
        f"(threshold p_d={result['threshold_rate']})"
    ]
    for p_d, final in result["finals"].items():
        rows.append(f"  p_d={p_d:.1f}  cumulative reward={final:+.3f}")
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
