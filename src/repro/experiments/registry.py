"""Declarative figure registry: one :class:`FigureSpec` per experiment.

Every driver module implements the same protocol —
``default_config() -> Config``, ``run(cfg) -> dict`` and
``format_rows(result) -> list[str]`` — so running any figure is the same
three calls. The registry is the single place that knows which figures
exist, what they reproduce, and how to shrink them for ``--fast`` runs
(``cfg.scaled(**fast_overrides)`` applied uniformly; no per-figure
wrapper functions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from . import (
    arch_comm,
    fault_tolerance,
    fig04_rewards,
    fig05_market,
    fig06_unreliable,
    fig07_attack_damage,
    fig08_cifar_damage,
    fig09_detection,
    fig10_defense,
    fig11_reputation,
    fig12_contribution,
    fig13_cumulative_rewards,
    fig14_punishments,
    noniid,
    population_scale,
    sim_churn,
    sim_stragglers,
)

__all__ = ["FigureSpec", "REGISTRY", "FIGURES"]


@dataclass(frozen=True)
class FigureSpec:
    """One figure: its driver module plus the reduced ``--fast`` scale."""

    fig_id: str
    module: Any
    title: str
    fast_overrides: Mapping[str, Any] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def config(self, fast: bool = False):
        """The figure's config, optionally scaled down for a fast run."""
        cfg = self.module.default_config()
        if fast and self.fast_overrides:
            cfg = cfg.scaled(**self.fast_overrides)
        return cfg

    def run(self, fast: bool = False) -> tuple[dict, list[str]]:
        """Execute the driver; returns ``(result, printable rows)``."""
        result = self.module.run(self.config(fast))
        return result, self.module.format_rows(result)


def _spec(fig_id, module, title, **fast_overrides) -> FigureSpec:
    return FigureSpec(
        fig_id, module, title, MappingProxyType(dict(fast_overrides))
    )


REGISTRY: tuple[FigureSpec, ...] = (
    _spec(
        "fig04", fig04_rewards,
        "reward distribution and attractiveness per quality group",
        repetitions=5, probe_rounds=3,
    ),
    _spec(
        "fig05", fig05_market,
        "market attraction and relative system revenue (reliable)",
        repetitions=5, probe_rounds=3,
    ),
    _spec(
        "fig06", fig06_unreliable,
        "system revenue under attacks, relative to FIFL",
        repetitions=5, probe_rounds=3,
    ),
    _spec(
        "fig07", fig07_attack_damage,
        "attacker damage on the MNIST-like task (no defence)",
        rounds=10, eval_every=10,
    ),
    _spec(
        "fig08", fig08_cifar_damage,
        "attacker damage on the CIFAR10-like task (ResNet model)",
        rounds=10, eval_every=10,
    ),
    _spec(
        "fig09", fig09_detection,
        "detection threshold S_y: accuracy and the TP/TN trade-off",
        poison_rates=(0.3, 0.9), thresholds=(0.0, 0.2),
    ),
    _spec(
        "fig10", fig10_defense,
        "the attack-detection module protects the global model",
        rounds=12, eval_every=12,
    ),
    _spec(
        "fig11", fig11_reputation,
        "reputation tracks workers' attack probabilities",
        rounds=20, eval_every=20,
    ),
    _spec(
        "fig12", fig12_contribution,
        "contributions separate workers by data quality",
        rounds=8, eval_every=8,
    ),
    _spec(
        "fig13", fig13_cumulative_rewards,
        "cumulative rewards/punishments by data quality",
        rounds=8, eval_every=8,
    ),
    _spec(
        "fig14", fig14_punishments,
        "punishments grow with sign-flipping attack intensity",
        rounds=8, eval_every=8,
    ),
    # extension experiments (not paper figures)
    _spec(
        "ext-comm", arch_comm,
        "communication load across FL architectures",
        rounds=2,
    ),
    _spec(
        "ext-fault", fault_tolerance,
        "node failure and the polycentric recovery story",
        rounds=10, fail_at=3,
    ),
    _spec(
        "ext-noniid", noniid,
        "detection under non-iid data",
        alphas=(100.0, 0.1), rounds=6,
    ),
    _spec(
        "population-scale", population_scale,
        "cross-device scale: cohort sampling over a lazy worker population",
        population_size=300, cohort_size=12, rounds=6, eval_every=6,
    ),
    # discrete-event simulation scenarios (repro.sim)
    _spec(
        "sim-churn", sim_churn,
        "reputation and rewards under worker/server churn",
        rounds=8, eval_every=8,
    ),
    _spec(
        "sim-stragglers", sim_stragglers,
        "round time and deadline misses vs straggler rate",
        rates=(0.0, 0.5), rounds=6, eval_every=6,
    ),
)

#: figure id -> spec, in registry order
FIGURES: dict[str, FigureSpec] = {spec.fig_id: spec for spec in REGISTRY}
