"""Extension experiment: communication load across FL architectures.

S3.2 motivates the polycentric architecture by communication scalability:
one central server carries all N gradient uploads and N downloads per
round, while M polycentric servers each carry a 1/M slice of that and a
fully decentralized mesh spreads the load evenly. This experiment trains
the same federation under each architecture and measures real bytes per
node from the network substrate's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fl import FederatedTrainer
from ..nn import build_logreg
from .common import DriverConfig, FedExpConfig, build_federation

__all__ = ["ArchCommConfig", "default_config", "run", "format_rows"]


@dataclass(frozen=True)
class ArchCommConfig(DriverConfig):
    num_workers: int = 8
    rounds: int = 5
    seed: int = 0


def default_config() -> ArchCommConfig:
    return ArchCommConfig()


def run(cfg: ArchCommConfig | None = None, **overrides) -> dict:
    """Per-node communication load per architecture.

    Returns per-architecture: total bytes, max node load (the
    bottleneck), and the load vector.
    """
    cfg = (cfg if cfg is not None else default_config()).scaled(**overrides)
    num_workers, rounds, seed = cfg.num_workers, cfg.rounds, cfg.seed
    if num_workers < 4:
        raise ValueError("need at least 4 workers for three architectures")
    architectures = {
        "centralized (M=1)": [0],
        f"polycentric (M={num_workers // 2})": list(range(0, num_workers, 2)),
        f"decentralized (M={num_workers})": list(range(num_workers)),
    }
    fed = FedExpConfig(
        dataset="blobs",
        num_workers=num_workers,
        samples_per_worker=60,
        test_samples=60,
        rounds=rounds,
        eval_every=rounds,
        seed=seed,
    )
    out: dict[str, dict] = {}
    for name, ranks in architectures.items():
        model, workers, test = build_federation(fed)
        trainer = FederatedTrainer(
            model, workers, ranks, test_data=test,
            server_lr=fed.server_lr, seed=seed,
        )
        history = trainer.run(rounds, eval_every=rounds)
        load = trainer.node_comm_load()
        out[name] = {
            "total_bytes": trainer.network.total_bytes(),
            "max_node_load": max(load.values()),
            "mean_node_load": float(np.mean(list(load.values()))),
            "load": load,
            "final_acc": history.final_accuracy(),
        }
    return out


def format_rows(result: dict) -> list[str]:
    rows = ["Communication load by architecture (bytes over the whole run)"]
    rows.append(
        f"{'architecture':>22} {'total':>12} {'max node':>12} {'mean node':>12} {'acc':>6}"
    )
    for name, r in result.items():
        rows.append(
            f"{name:>22} {r['total_bytes']:>12,} {r['max_node_load']:>12,} "
            f"{r['mean_node_load']:>12,.0f} {r['final_acc']:>6.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
