"""Figure 12: contributions separate workers by data quality.

Workers with data-poison rates p_d in {0, 0.1, ..., 0.4} train together;
the contribution baseline b_h is the p_d = 0.2 worker's gradient distance
(S5.3.3), so only better-than-threshold workers earn positive
contribution, and contribution is ordered inversely to p_d.
"""

from __future__ import annotations

import numpy as np

from .common import FedExpConfig, data_poison, run_federated

__all__ = ["run", "format_rows"]

PAPER_POISON_RATES = (0.0, 0.1, 0.2, 0.3, 0.4)


def default_config() -> FedExpConfig:
    return FedExpConfig(
        dataset="blobs",
        # Majority-honest federation (paper S5.3.1: 10 workers): the global
        # gradient's magnitude then tracks the honest gradient, so the
        # graded workers' distances are ordered by p_d. With a poisoned
        # majority the aggregate shrinks toward mid-poison gradients and
        # the ordering inverts.
        num_workers=10,
        # large shards + full-batch local gradients: shard/batch noise must
        # sit well below the gradient shift of low poison rates (p_d <= 0.2)
        # for the contribution ordering to be attributable to quality
        samples_per_worker=1500,
        test_samples=300,
        rounds=25,
        eval_every=25,
        batch_size=1500,
        server_ranks=(0, 1),
        # accept everyone: this experiment isolates the contribution module
        detection_threshold=-1.0,
        contribution_baseline="reference",
        contribution_filter=True,
        contribution_reference="server_mean",
    )


def run(
    cfg: FedExpConfig | None = None,
    poison_rates: tuple[float, ...] = PAPER_POISON_RATES,
    threshold_rate: float = 0.2,
) -> dict:
    """Per-round contributions for workers of graded quality."""
    cfg = cfg if cfg is not None else default_config()
    if len(poison_rates) + 2 > cfg.num_workers:
        raise ValueError("not enough worker slots")
    ids = list(range(cfg.num_workers - len(poison_rates), cfg.num_workers))
    attackers = {i: data_poison(p_d) for i, p_d in zip(ids, poison_rates)}
    reference_id = ids[poison_rates.index(threshold_rate)]
    cfg = cfg.scaled(reference_worker=reference_id)
    _, mech = run_federated(cfg, attackers, with_fifl=True)
    assert mech is not None
    series = {
        p_d: [rec.contribs.get(i) for rec in mech.records]
        for i, p_d in zip(ids, poison_rates)
    }
    means = {
        p_d: float(np.mean([v for v in vals if v is not None]))
        for p_d, vals in series.items()
    }
    return {"series": series, "means": means, "threshold_rate": threshold_rate}


def format_rows(result: dict) -> list[str]:
    rows = [
        f"Fig 12: mean contribution by mislabel rate p_d "
        f"(threshold at p_d={result['threshold_rate']})"
    ]
    for p_d, mean in result["means"].items():
        marker = "+" if mean > 0 else "-"
        rows.append(f"  p_d={p_d:.1f}  mean contribution={mean:+.3f} ({marker})")
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
