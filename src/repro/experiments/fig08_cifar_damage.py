"""Figure 8: attacker damage on the CIFAR10-like task (ResNet model).

(a) accuracy and (b) test loss of the global model trained with
different attacker types. Same conclusions as Fig. 7 on the harder task.
"""

from __future__ import annotations

from .common import FedExpConfig, data_poison, run_federated, sign_flip

__all__ = ["default_config", "run", "format_rows"]


def default_config() -> FedExpConfig:
    # Calibrated to ~0.43 clean accuracy in ~40 rounds (the CIFAR-like
    # task is intentionally harder than the MNIST-like one, as in the
    # paper); one sign-flip attacker gives graded damage.
    return FedExpConfig(
        dataset="cifar10",
        image_size=12,
        samples_per_worker=200,
        test_samples=300,
        rounds=40,
        eval_every=4,
        lr=0.05,
        server_lr=0.05,
        batch_size=64,
        local_iters=3,
    )


def run(
    cfg: FedExpConfig | None = None,
    p_s: float = 6.0,
    p_d: float = 0.9,
    num_attackers: int = 2,
) -> dict:
    """Accuracy + loss curves per attacker scenario on CIFAR-like data."""
    cfg = cfg if cfg is not None else default_config()
    ids = list(range(2, 2 + max(2, num_attackers)))
    scenarios = {
        "none": {},
        "sign_flip": {ids[0]: sign_flip(p_s)},
        "data_poison": {i: data_poison(p_d) for i in ids},
        "joint": {ids[0]: sign_flip(p_s), ids[-1]: data_poison(p_d)},
    }
    acc, loss = {}, {}
    for name, attackers in scenarios.items():
        history, _ = run_federated(cfg, attackers, with_fifl=False)
        acc[name] = history.series("test_acc")
        loss[name] = history.series("test_loss")
    return {"accuracy": acc, "loss": loss}


def _final(series: list) -> float:
    return next(v for v in reversed(series) if v is not None)


def format_rows(result: dict) -> list[str]:
    rows = ["Fig 8 CIFAR10-like: final accuracy / test loss per attacker type"]
    for name in result["accuracy"]:
        rows.append(
            f"  {name:>12}  acc={_final(result['accuracy'][name]):.3f}"
            f"  loss={_final(result['loss'][name]):.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
