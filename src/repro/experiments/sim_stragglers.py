"""Simulation experiment: round time and deadline misses vs straggler rate.

Synchronous FL pays for its slowest worker: with heavy-tailed network
latency and a straggler process (each round a worker is slowed by
``slowdown``x with probability ``rate``), the virtual round duration
grows with the straggler rate until the server's deadline caps it — at
which point slow workers stop costing time and start costing *coverage*
(their uploads arrive late and become SLM uncertain events).

This driver sweeps the straggler rate under a fixed deadline and
reports, per rate: mean/max virtual round duration, late uploads per
round, and uncertain events per round. Same seed + scenario is
byte-reproducible; rate 0.0 degenerates to plain latency-only rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim import FaultScenario, LatencyConfig
from .common import FedExpConfig, FigureConfig, run_federated

__all__ = ["StragglerConfig", "default_config", "run", "format_rows"]


def _default_fed() -> FedExpConfig:
    return FedExpConfig(
        dataset="blobs",
        num_workers=8,
        samples_per_worker=120,
        test_samples=150,
        rounds=12,
        eval_every=12,
        server_ranks=(0, 1),
    )


@dataclass(frozen=True)
class StragglerConfig(FigureConfig):
    fed: FedExpConfig = field(default_factory=_default_fed)
    rates: tuple[float, ...] = (0.0, 0.25, 0.5)
    slowdown: float = 5.0
    base_compute_s: float = 1.0
    # A straggler computes for slowdown * base = 5 virtual seconds, past
    # this deadline: straggling costs coverage (late => uncertain), not
    # just time. Raise past 5s to study pure round-time inflation.
    round_timeout_s: float = 4.0


def default_config() -> StragglerConfig:
    return StragglerConfig()


def make_scenario(cfg: StragglerConfig, rate: float) -> FaultScenario:
    return FaultScenario(
        name=f"stragglers-{rate}",
        latency=LatencyConfig(kind="lognormal", a=0.05, b=0.5),
        round_timeout_s=cfg.round_timeout_s,
        max_retries=1,
        base_compute_s=cfg.base_compute_s,
        straggler_rate=rate,
        straggler_slowdown=cfg.slowdown,
        seed=cfg.fed.seed,
    )


def run(cfg: StragglerConfig | None = None) -> dict:
    """Sweep the straggler rate; measure round time and deadline misses."""
    cfg = cfg if cfg is not None else default_config()
    sweep: dict[float, dict] = {}
    for rate in cfg.rates:
        fed = cfg.fed.scaled(scenario=make_scenario(cfg, rate))
        history, _ = run_federated(fed, attackers=None, with_fifl=False)
        durations = [r.duration_s for r in history.rounds]
        sims = [r.sim or {} for r in history.rounds]
        sweep[rate] = {
            "mean_duration_s": float(np.mean(durations)),
            "max_duration_s": float(np.max(durations)),
            "stragglers_per_round": float(
                np.mean([len(s.get("stragglers", ())) for s in sims])
            ),
            "late_per_round": float(
                np.mean([len(s.get("late", ())) for s in sims])
            ),
            "uncertain_per_round": float(
                np.mean([len(r.uncertain) for r in history.rounds])
            ),
            "final_acc": history.final_accuracy(),
        }
    return {"sweep": sweep, "round_timeout_s": cfg.round_timeout_s}


def format_rows(result: dict) -> list[str]:
    rows = [
        "Sim: round time vs straggler rate "
        f"(deadline {result['round_timeout_s']:.1f}s, discrete-event kernel)"
    ]
    for rate, s in result["sweep"].items():
        rows.append(
            f"  rate={rate:.2f}  mean round={s['mean_duration_s']:.2f}s"
            f"  max={s['max_duration_s']:.2f}s"
            f"  late/round={s['late_per_round']:.2f}"
            f"  uncertain/round={s['uncertain_per_round']:.2f}"
            f"  final acc={s['final_acc']:.3f}"
        )
    return rows


def main() -> None:  # pragma: no cover
    for row in format_rows(run()):
        print(row)


if __name__ == "__main__":  # pragma: no cover
    main()
