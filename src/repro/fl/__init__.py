"""Federated-learning substrate: workers, gradients, trainer, evaluation."""

from .evaluation import accuracy, evaluate
from .fleet_compute import FleetLocalEngine
from .gradients import fedavg, recombine, slice_bounds, split_gradient
from .trainer import (
    FederatedTrainer,
    RoundContext,
    RoundDecision,
    RoundMechanism,
    RoundRecord,
    TrainingHistory,
)
from .workers import (
    WORKER_ROLES,
    ColludingAttacker,
    DataPoisonWorker,
    FreeRiderWorker,
    GaussianNoiseAttacker,
    HonestWorker,
    ProbabilisticAttacker,
    ReplayFreeRider,
    SampleInflationWorker,
    SignFlippingWorker,
    Worker,
    WorkerSpec,
    WorkerUpdate,
    make_worker,
    make_workers,
    register_worker_role,
)

__all__ = [
    "accuracy",
    "evaluate",
    "FleetLocalEngine",
    "fedavg",
    "recombine",
    "slice_bounds",
    "split_gradient",
    "FederatedTrainer",
    "RoundContext",
    "RoundDecision",
    "RoundMechanism",
    "RoundRecord",
    "TrainingHistory",
    "Worker",
    "WorkerUpdate",
    "HonestWorker",
    "SignFlippingWorker",
    "DataPoisonWorker",
    "FreeRiderWorker",
    "ProbabilisticAttacker",
    "GaussianNoiseAttacker",
    "ReplayFreeRider",
    "SampleInflationWorker",
    "ColludingAttacker",
    "WorkerSpec",
    "WORKER_ROLES",
    "register_worker_role",
    "make_worker",
    "make_workers",
]
