"""Worker agents: honest devices and the paper's attacker types (S5.1).

Every worker owns a local dataset and a private model replica. Each round
the trainer hands the worker the global parameter vector; the worker runs
``local_iters`` minibatch SGD steps and returns its accumulated local
gradient ``G_i = (theta_start - theta_end) / lr`` — identical to the sum of
per-step gradients for plain SGD, which is the paper's ``G_i = sum_k dL/dθ``.

Attackers transform that honest behaviour:

* :class:`SignFlippingWorker` uploads ``-p_s * G_i`` (attack intensity p_s);
* :class:`DataPoisonWorker` trains on labels mislabelled at rate ``p_d``;
* :class:`FreeRiderWorker` uploads a gradient-shaped noise vector without
  training (seeks rewards for no utility);
* :class:`ProbabilisticAttacker` flips a coin each round and behaves as its
  attacker persona with probability ``p_a`` (used by the reputation
  experiments, Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..datasets import Dataset, poison_dataset
from ..nn import SoftmaxCrossEntropy, Sequential
from ..nn.optim import Optimizer

__all__ = [
    "WorkerUpdate",
    "Worker",
    "HonestWorker",
    "SignFlippingWorker",
    "DataPoisonWorker",
    "FreeRiderWorker",
    "ProbabilisticAttacker",
    "GaussianNoiseAttacker",
    "ReplayFreeRider",
    "SampleInflationWorker",
    "ColludingAttacker",
    "WorkerSpec",
    "WORKER_ROLES",
    "register_worker_role",
    "make_worker",
    "make_workers",
]


@dataclass
class WorkerUpdate:
    """What a worker uploads each round."""

    worker_id: int
    gradient: np.ndarray
    num_samples: int  # claimed sample count (trusted by the baselines only)
    attacked: bool = False  # ground truth for detection metrics
    # non-trainable state (BatchNorm running stats), synchronized
    # out-of-band per FedAvg-BN practice; None for buffer-free models
    buffers: np.ndarray | None = None


class Worker:
    """Base worker: local data, local model replica, honest local training.

    The round contract is split in two so the fleet engine can batch the
    expensive half: :meth:`_local_gradient` (honest local SGD — either run
    here on the private replica or computed for many workers at once by
    :class:`~repro.fl.fleet_compute.FleetLocalEngine`) and
    :meth:`finalize_update` (the worker's upload policy — identity for
    honest workers, the attack transform for adversaries — always a cheap
    vector op on the computed gradient). Workers that never train
    (free-riders) set ``trains_locally = False`` and override
    :meth:`compute_update` wholesale.
    """

    is_malicious = False  # static ground-truth label for metrics
    trains_locally = True  # False: skips local SGD entirely (free-riders)

    def __init__(
        self,
        worker_id: int,
        dataset: Dataset,
        model_fn: Callable[[], Sequential],
        lr: float = 0.1,
        batch_size: int = 32,
        local_iters: int = 1,
        seed: int = 0,
        optimizer: Optimizer | None = None,
        compute_time: float | Callable[[int, np.random.Generator], float] | None = None,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if batch_size <= 0 or local_iters <= 0:
            raise ValueError("batch_size and local_iters must be positive")
        if len(dataset) == 0:
            raise ValueError("worker dataset is empty")
        self.worker_id = worker_id
        self.dataset = dataset
        self.model = model_fn()
        self.lr = lr
        self.batch_size = batch_size
        self.local_iters = local_iters
        self.rng = np.random.default_rng(seed)
        self._loss_fn = SoftmaxCrossEntropy()
        # Optional local optimizer (momentum/Adam). The uploaded "gradient"
        # is always the normalized parameter delta (theta0 - thetaK) / lr
        # — for plain SGD that equals the accumulated gradient exactly;
        # for other optimizers it is the effective update direction, which
        # is what FedAvg-of-updates aggregates in practice. The optimizer
        # state is reset each round so rounds stay independent.
        self.optimizer = optimizer
        # Per-worker compute-time model for fault scenarios: a constant
        # (virtual seconds per round), a callable ``(round_idx, rng) ->
        # seconds``, or None to use the scenario's base_compute_s.
        if compute_time is not None and not callable(compute_time):
            if compute_time < 0:
                raise ValueError("compute_time must be non-negative")
            compute_time = float(compute_time)
        self.compute_time = compute_time

    def local_compute_seconds(
        self, round_idx: int, rng: np.random.Generator
    ) -> float | None:
        """Virtual seconds this round's local training takes (sim only).

        ``None`` defers to the scenario's ``base_compute_s``. Callable
        models draw from the simulator's fault stream, so they never
        perturb training or network randomness.
        """
        if self.compute_time is None:
            return None
        if callable(self.compute_time):
            return float(self.compute_time(round_idx, rng))
        return self.compute_time

    @property
    def num_samples(self) -> int:
        """Sample count the worker reports (honest workers report truth)."""
        return len(self.dataset)

    def _local_gradient(
        self, global_params: np.ndarray, global_buffers: np.ndarray | None = None
    ) -> np.ndarray:
        """Accumulated gradient of ``local_iters`` SGD steps from theta."""
        self.model.set_flat_params(global_params)
        if global_buffers is not None and global_buffers.size:
            self.model.set_flat_buffers(global_buffers)
        if self.optimizer is not None:
            self.optimizer.reset()
        for _ in range(self.local_iters):
            idx = self.rng.integers(0, len(self.dataset), size=min(
                self.batch_size, len(self.dataset)
            ))
            x, y = self.dataset.x[idx], self.dataset.y[idx]
            self._loss_fn(self.model.forward(x, training=True), y)
            self.model.backward(self._loss_fn.backward())
            grad = self.model.get_flat_grads()
            if self.optimizer is not None:
                self.model.set_flat_params(
                    self.optimizer.step(self.model.get_flat_params(), grad)
                )
            else:
                self.model.apply_flat_grads(grad, lr=self.lr)
        return (global_params - self.model.get_flat_params()) / self.lr

    def _buffers_out(self) -> np.ndarray | None:
        buf = self.model.get_flat_buffers()
        return buf if buf.size else None

    def finalize_update(
        self, grad: np.ndarray, buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        """Turn a computed local gradient into the uploaded update.

        Attackers override this with their transform; any RNG draws they
        make here come *after* the minibatch-sampling draws of the local
        training, so the per-worker stream is identical whether the
        gradient came from the scalar loop or the fleet kernel.
        """
        return WorkerUpdate(
            self.worker_id, grad, self.num_samples, attacked=False, buffers=buffers
        )

    def compute_update(
        self, global_params: np.ndarray, global_buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        """One round of local training plus the upload transform."""
        grad = self._local_gradient(global_params, global_buffers)
        return self.finalize_update(grad, self._buffers_out())


class HonestWorker(Worker):
    """Alias for the base behaviour, named for experiment readability."""


class SignFlippingWorker(Worker):
    """Uploads ``-p_s * G_i`` to push the model away from convergence."""

    is_malicious = True

    def __init__(self, *args, p_s: float = 4.0, **kwargs):
        super().__init__(*args, **kwargs)
        if p_s <= 0:
            raise ValueError("attack intensity p_s must be positive")
        self.p_s = p_s

    def finalize_update(
        self, grad: np.ndarray, buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        return WorkerUpdate(
            self.worker_id,
            -self.p_s * grad,
            self.num_samples,
            attacked=True,
            buffers=buffers,
        )


class DataPoisonWorker(Worker):
    """Trains honestly on a dataset whose labels are wrong at rate ``p_d``."""

    def __init__(self, *args, p_d: float = 0.5, poison_seed: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= p_d <= 1.0:
            raise ValueError("p_d must be in [0, 1]")
        self.p_d = p_d
        if p_d > 0:
            self.dataset = poison_dataset(
                self.dataset, p_d, np.random.default_rng(poison_seed)
            )

    # High p_d is an attack; low p_d is merely low-quality data. The paper
    # treats p_d >= threshold as unreliable; metrics use this coarse label.
    @property
    def is_malicious(self) -> bool:  # type: ignore[override]
        return self.p_d > 0.0

    def finalize_update(
        self, grad: np.ndarray, buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        return WorkerUpdate(
            self.worker_id,
            grad,
            self.num_samples,
            attacked=self.p_d > 0.0,
            buffers=buffers,
        )


class FreeRiderWorker(Worker):
    """Skips training and uploads small random noise shaped like a gradient."""

    is_malicious = True
    trains_locally = False

    def __init__(self, *args, noise_scale: float = 1e-3, **kwargs):
        super().__init__(*args, **kwargs)
        if noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")
        self.noise_scale = noise_scale

    def compute_update(
        self, global_params: np.ndarray, global_buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        grad = self.noise_scale * self.rng.normal(size=global_params.size)
        return WorkerUpdate(
            self.worker_id, grad, self.num_samples, attacked=True, buffers=None
        )


class ProbabilisticAttacker(Worker):
    """Behaves as ``attacker`` with probability ``p_a``, else honestly.

    Models the paper's unstable attackers whose reputation should converge
    to ``1 - p_a`` (Theorem 1 / Fig. 11).
    """

    is_malicious = True

    def __init__(self, *args, p_a: float = 0.5, p_s: float = 4.0, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= p_a <= 1.0:
            raise ValueError("p_a must be in [0, 1]")
        if p_s <= 0:
            raise ValueError("p_s must be positive")
        self.p_a = p_a
        self.p_s = p_s

    def finalize_update(
        self, grad: np.ndarray, buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        if self.rng.random() < self.p_a:
            return WorkerUpdate(
                self.worker_id,
                -self.p_s * grad,
                self.num_samples,
                attacked=True,
                buffers=buffers,
            )
        return WorkerUpdate(
            self.worker_id,
            grad,
            self.num_samples,
            attacked=False,
            buffers=buffers,
        )


class GaussianNoiseAttacker(Worker):
    """Uploads pure Gaussian noise scaled to the honest gradient's norm.

    Eq. 4's "arbitrary value" Byzantine worker: it trains (so its noise is
    norm-calibrated and not trivially spotted by magnitude) but discards
    the result and uploads a random direction scaled by ``scale``.
    """

    is_malicious = True

    def __init__(self, *args, scale: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def finalize_update(
        self, grad: np.ndarray, buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        noise = self.rng.normal(size=grad.size)
        norm = np.linalg.norm(noise)
        if norm > 0:
            noise *= self.scale * np.linalg.norm(grad) / norm
        return WorkerUpdate(
            self.worker_id,
            noise,
            self.num_samples,
            attacked=True,
            buffers=buffers,
        )


class ReplayFreeRider(Worker):
    """Stealthy free-rider: replays the previous global model delta.

    Instead of training, it uploads the *difference of global parameters*
    between the last two rounds scaled back into gradient units — a
    classic free-riding strategy that mimics the crowd's direction and is
    much harder to catch than random noise (its gradient correlates
    positively with the benchmark). First round falls back to zeros.
    """

    is_malicious = True
    trains_locally = False

    def __init__(self, *args, server_lr: float = 0.1, **kwargs):
        super().__init__(*args, **kwargs)
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        self.server_lr = server_lr
        self._last_params: np.ndarray | None = None

    def compute_update(
        self, global_params: np.ndarray, global_buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        if self._last_params is None:
            grad = np.zeros_like(global_params)
        else:
            # theta_t = theta_{t-1} - eta * G  =>  G = (prev - cur) / eta
            grad = (self._last_params - global_params) / self.server_lr
        self._last_params = global_params.copy()
        return WorkerUpdate(
            self.worker_id, grad, self.num_samples, attacked=True, buffers=None
        )


class SampleInflationWorker(Worker):
    """Honest trainer that *lies about its sample count* (S5.2 discussion).

    The baselines' utility functions trust the reported ``n_i``; a worker
    claiming ``inflation``x its real data inflates its Ψ-based reward
    share proportionally. FIFL's gradient-based contribution never reads
    the claim, so the fraud buys nothing there (the claim does enter the
    FedAvg weighting, which is the same exposure the paper's setting has).
    """

    is_malicious = True  # fraudulent, though its gradients are honest

    def __init__(self, *args, inflation: float = 10.0, **kwargs):
        super().__init__(*args, **kwargs)
        if inflation < 1.0:
            raise ValueError("inflation must be >= 1")
        self.inflation = inflation

    @property
    def num_samples(self) -> int:  # type: ignore[override]
        return int(self.inflation * len(self.dataset))

    def finalize_update(
        self, grad: np.ndarray, buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        return WorkerUpdate(
            self.worker_id,
            grad,
            self.num_samples,  # the fraudulent claim
            attacked=False,  # the gradient itself is honest
            buffers=buffers,
        )


class ColludingAttacker(Worker):
    """Coordinated small-perturbation attacker ("a little is enough").

    The paper explicitly scopes FIFL to *disorganized* attackers (S4.1),
    citing Baruch et al.: colluders can "hide the backdoor in small
    changed gradients". This worker models that boundary: every colluder
    sharing the same ``direction_seed`` adds the same small planted
    direction to its honest gradient, scaled to ``epsilon`` of the honest
    gradient's norm — small enough that the cosine score barely moves,
    yet the shared bias survives averaging and steers the global model.
    """

    is_malicious = True

    def __init__(self, *args, epsilon: float = 0.3, direction_seed: int = 42,
                 **kwargs):
        super().__init__(*args, **kwargs)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.direction_seed = direction_seed
        self._direction: np.ndarray | None = None

    def _planted_direction(self, size: int) -> np.ndarray:
        if self._direction is None or self._direction.size != size:
            rng = np.random.default_rng(self.direction_seed)
            d = rng.normal(size=size)
            self._direction = d / np.linalg.norm(d)
        return self._direction

    def finalize_update(
        self, grad: np.ndarray, buffers: np.ndarray | None = None
    ) -> WorkerUpdate:
        direction = self._planted_direction(grad.size)
        planted = grad + self.epsilon * np.linalg.norm(grad) * direction
        return WorkerUpdate(
            self.worker_id,
            planted,
            self.num_samples,
            attacked=True,
            buffers=buffers,
        )


# -- declarative worker-spec registry ------------------------------------------
#
# Population rosters (repro.population) and the per-experiment attacker
# maps share one spawning path: a role name plus keyword parameters,
# resolved through WORKER_ROLES. Experiments stop hand-rolling
# ``if kind == ...`` construction loops; a million-worker population
# stores one WorkerSpec (or a spec function) instead of live objects.

#: role name -> worker class; extend via :func:`register_worker_role`
WORKER_ROLES: dict[str, type[Worker]] = {
    "honest": HonestWorker,
    "sign": SignFlippingWorker,
    "poison": DataPoisonWorker,
    "free": FreeRiderWorker,
    "prob": ProbabilisticAttacker,
    "noise": GaussianNoiseAttacker,
    "replay": ReplayFreeRider,
    "inflate": SampleInflationWorker,
    "collude": ColludingAttacker,
}


def register_worker_role(name: str, cls: type[Worker]) -> None:
    """Register a custom worker class under a role name."""
    if not issubclass(cls, Worker):
        raise TypeError(f"{cls!r} is not a Worker subclass")
    WORKER_ROLES[name] = cls


@dataclass(frozen=True)
class WorkerSpec:
    """Declarative recipe for one worker: a role plus its parameters."""

    role: str = "honest"
    params: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.role not in WORKER_ROLES:
            raise ValueError(
                f"unknown worker role {self.role!r}; "
                f"available: {', '.join(sorted(WORKER_ROLES))}"
            )

    @property
    def is_malicious(self) -> bool:
        """Static ground-truth label without constructing the worker."""
        cls = WORKER_ROLES[self.role]
        if self.role == "poison":
            return float(dict(self.params).get("p_d", 0.5)) > 0.0
        return bool(cls.is_malicious)


def make_worker(
    spec: WorkerSpec,
    worker_id: int,
    dataset: Dataset,
    model_fn: Callable[[], Sequential],
    seed: int = 0,
    **common,
) -> Worker:
    """Construct one worker from its spec (the single spawning path).

    ``common`` carries the federation-wide hyperparameters (lr,
    batch_size, local_iters, ...). Data-poison specs default their
    ``poison_seed`` to ``seed``, matching the long-standing experiment
    convention, so legacy rosters rebuild bit-identically.
    """
    params = dict(spec.params)
    if spec.role == "poison":
        params.setdefault("poison_seed", seed)
    return WORKER_ROLES[spec.role](
        worker_id, dataset, model_fn, seed=seed, **params, **common
    )


def make_workers(
    specs: list[WorkerSpec] | Mapping[int, WorkerSpec],
    datasets: list[Dataset],
    model_fn: Callable[[], Sequential],
    seed_fn: Callable[[int], int],
    **common,
) -> list[Worker]:
    """Materialize a full roster: worker ``i`` from ``specs[i]``.

    ``specs`` is either a list aligned with ``datasets`` or a sparse
    ``{worker_id: spec}`` override map (missing ids default to honest).
    ``seed_fn(worker_id)`` supplies each worker's private RNG seed.
    """
    n = len(datasets)
    if isinstance(specs, Mapping):
        bad = set(specs) - set(range(n))
        if bad:
            raise ValueError(f"spec ids {sorted(bad)} out of range")
        default = WorkerSpec()
        roster = [specs.get(wid, default) for wid in range(n)]
    else:
        if len(specs) != n:
            raise ValueError(f"{len(specs)} specs for {n} datasets")
        roster = list(specs)
    return [
        make_worker(roster[wid], wid, datasets[wid], model_fn,
                    seed=seed_fn(wid), **common)
        for wid in range(n)
    ]
