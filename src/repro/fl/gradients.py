"""Gradient vector utilities: slicing, recombination, weighted aggregation.

The polycentric protocol (paper S3.2) splits each worker's flat gradient
into M contiguous slices, ships slice j to server j, and recombines the
per-server aggregates into the global gradient. Slicing here is plain
``np.array_split`` so ``recombine(split(G)) == G`` exactly and every
worker/server pair agrees on slice boundaries given (vector length, M).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "split_gradient",
    "split_views",
    "recombine",
    "fedavg",
    "slice_bounds",
    "slice_offsets",
]


@lru_cache(maxsize=None)
def _cached_bounds(length: int, num_slices: int) -> tuple[tuple[int, int], ...]:
    """Memoized slice boundaries per (vector length, server count).

    Every worker/round re-derives the same boundaries for a fixed
    topology; caching makes slicing a table lookup plus fancy-indexing
    instead of per-call arithmetic (the round engine's hot path).
    """
    if num_slices <= 0:
        raise ValueError("num_slices must be positive")
    if length < 0:
        raise ValueError("length must be non-negative")
    base = length // num_slices
    extra = length % num_slices
    bounds = []
    start = 0
    for j in range(num_slices):
        size = base + (1 if j < extra else 0)
        bounds.append((start, start + size))
        start += size
    return tuple(bounds)


def slice_bounds(length: int, num_slices: int) -> list[tuple[int, int]]:
    """(start, end) index pairs of each slice, matching np.array_split."""
    return list(_cached_bounds(length, num_slices))


def slice_offsets(length: int, num_slices: int) -> np.ndarray:
    """``(M+1,)`` offsets; slice j spans ``offsets[j]:offsets[j+1]``."""
    bounds = _cached_bounds(length, num_slices)
    return np.asarray([0] + [end for _, end in bounds], dtype=np.intp)


def _check_splittable(grad: np.ndarray, num_slices: int) -> None:
    if grad.ndim != 1:
        raise ValueError(f"gradient must be flat, got shape {grad.shape}")
    if num_slices <= 0:
        raise ValueError("num_slices must be positive")
    if num_slices > grad.size and grad.size > 0:
        raise ValueError(
            f"cannot split {grad.size} values into {num_slices} non-trivial slices"
        )


def split_gradient(grad: np.ndarray, num_slices: int) -> list[np.ndarray]:
    """Split a flat gradient into ``num_slices`` contiguous slices (copies)."""
    grad = np.asarray(grad, dtype=np.float64)
    _check_splittable(grad, num_slices)
    bounds = _cached_bounds(grad.size, num_slices)
    return [grad[lo:hi].copy() for lo, hi in bounds]


def split_views(grad: np.ndarray, num_slices: int) -> list[np.ndarray]:
    """Like :func:`split_gradient` but returns read-only views (no copies).

    Safe whenever the slices are consumed without mutation — e.g. the
    trainer's upload path, where each slice is handed to the network and
    then only read by servers and the mechanism.
    """
    grad = np.asarray(grad, dtype=np.float64)
    _check_splittable(grad, num_slices)
    views = []
    for lo, hi in _cached_bounds(grad.size, num_slices):
        v = grad[lo:hi]
        v.flags.writeable = False
        views.append(v)
    return views


def recombine(slices: list[np.ndarray]) -> np.ndarray:
    """Concatenate slices back into the flat gradient."""
    if not slices:
        raise ValueError("no slices to recombine")
    return np.concatenate([np.asarray(s, dtype=np.float64) for s in slices])


def fedavg(gradients: list[np.ndarray], weights: list[float] | np.ndarray) -> np.ndarray:
    """Weighted average of gradient vectors (paper Eq. 2).

    Weights are normalized internally; typically ``weights[i] = n_i`` (the
    worker's sample count) possibly zeroed by detection flags ``r_i``.
    """
    if not gradients:
        raise ValueError("no gradients to aggregate")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(gradients),):
        raise ValueError(
            f"{len(gradients)} gradients but weights shape {weights.shape}"
        )
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    stacked = np.stack([np.asarray(g, dtype=np.float64) for g in gradients])
    if stacked.ndim != 2:
        raise ValueError("gradients must all be flat vectors of equal length")
    return (weights / total) @ stacked
