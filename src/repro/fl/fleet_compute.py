"""Fleet-batched local training: all workers' SGD steps as one kernel.

The scalar trainer asks each worker in turn to run its local minibatch
SGD — N sequential forward/backward passes over N private replicas of
the *same* architecture. :class:`FleetLocalEngine` replaces that loop:
it stacks eligible workers' parameters along a leading worker axis (see
:mod:`repro.nn.fleet`) and runs each local step for the whole fleet as
single batched NumPy calls.

Fidelity contract (differential-tested to <= 1e-8 against the scalar
path, and byte-identical where only layout changes):

* **Minibatch sampling** draws through each worker's *own*
  ``np.random.default_rng(seed)`` generator, one ``integers`` call per
  worker per local iteration — the exact calls the scalar
  ``Worker._local_gradient`` makes, in the same per-worker order — so
  every worker's RNG stream is reproduced index-for-index and any draws
  an attacker makes afterwards (coin flips, noise) line up too.
* **Attacker transforms** (sign-flip, probabilistic, noise-calibration,
  collusion, sample-count fraud) commute with batching: they only read
  the finished local gradient, so they run post-hoc per row via
  :meth:`Worker.finalize_update`.
* **Fallbacks**: workers with a custom optimizer, a fleet-ineligible
  architecture (e.g. Dropout), a heterogeneous ``model_fn``, or no local
  training at all (free-riders) transparently keep the scalar
  ``compute_update`` path; eligible workers are grouped by architecture
  signature + effective batch size + local iteration count, each group
  batched independently.
"""

from __future__ import annotations

import numpy as np

from ..nn.fleet import FleetSequential, FleetSoftmaxCrossEntropy, fleet_signature
from ..profiling import Profiler, get_profiler
from .workers import Worker, WorkerUpdate

__all__ = ["FleetLocalEngine"]


class _FleetGroup:
    """One batch of workers sharing architecture, batch size and iters.

    With ``persistent=False`` (shard-streaming mode) the stacked
    :class:`FleetSequential` is built lazily per round and released
    afterwards, so peak parameter memory is one shard's worth instead of
    the whole cohort's.
    """

    def __init__(self, workers: list[Worker], persistent: bool = True):
        self.workers = workers
        self._persistent = persistent
        self._model: FleetSequential | None = (
            FleetSequential(workers[0].model, len(workers)) if persistent else None
        )
        self.loss_fn = FleetSoftmaxCrossEntropy()
        self.lrs = np.asarray([w.lr for w in workers], dtype=np.float64)
        self.batch = min(workers[0].batch_size, len(workers[0].dataset))
        self.local_iters = workers[0].local_iters

    @property
    def model(self) -> FleetSequential:
        if self._model is None:
            self._model = FleetSequential(
                self.workers[0].model, len(self.workers)
            )
        return self._model

    def release(self) -> None:
        """Drop the stacked replica between rounds (shard mode only)."""
        if not self._persistent:
            self._model = None


def _group_key(worker: Worker) -> tuple | None:
    """Grouping key for fleet batching, or ``None`` for scalar fallback."""
    if not worker.trains_locally or worker.optimizer is not None:
        return None
    sig = fleet_signature(worker.model)
    if sig is None:
        return None
    return (
        sig,
        worker.dataset.x.shape[1:],
        min(worker.batch_size, len(worker.dataset)),
        worker.local_iters,
    )


class FleetLocalEngine:
    """Computes every worker's round update with fleet-batched kernels."""

    def __init__(
        self,
        workers: list[Worker],
        profiler: Profiler | None = None,
        shard_size: int | None = None,
    ):
        if shard_size is not None and shard_size <= 0:
            raise ValueError("shard_size must be positive (or None)")
        self.workers = sorted(workers, key=lambda w: w.worker_id)
        self.profiler = profiler if profiler is not None else get_profiler()
        # Shard streaming: cap every fleet group at ``shard_size`` workers
        # and build/release each shard's stacked replica lazily, bounding
        # peak parameter memory by shard size instead of cohort size. The
        # per-worker arithmetic is independent of the stacking axis, so
        # sharded results are bit-identical to the unsharded fleet (see
        # tests/population/test_shard_streaming.py).
        self.shard_size = shard_size
        self._groups: list[_FleetGroup] = []
        self._scalar: list[Worker] = []
        self._grouped_for: frozenset[int] | None = None
        # Last round's minibatch draws, ``{worker_id: [indices per iter]}``
        # — kept for the RNG-fidelity tests; negligible memory.
        self.last_indices: dict[int, list[np.ndarray]] = {}

    def _regroup(self, exclude: frozenset[int]) -> None:
        """(Re)build fleet groups for the current live-worker set."""
        by_key: dict[tuple, list[Worker]] = {}
        self._scalar = []
        for w in self.workers:
            if w.worker_id in exclude:
                continue
            key = _group_key(w)
            if key is None:
                self._scalar.append(w)
            else:
                by_key.setdefault(key, []).append(w)
        shard = self.shard_size
        self._groups = []
        for members in by_key.values():
            if shard is None or len(members) <= shard:
                self._groups.append(_FleetGroup(members))
            else:
                for lo in range(0, len(members), shard):
                    self._groups.append(
                        _FleetGroup(members[lo : lo + shard], persistent=False)
                    )
        self._grouped_for = exclude
        # Fleet-shape telemetry, re-emitted only when the grouping
        # actually changes (worker failure, reselection) — near-zero
        # steady-state cost, and the trace records every fleet reshape.
        prof = self.profiler
        prof.gauge("fleet.groups", len(self._groups))
        prof.gauge("fleet.scalar_workers", len(self._scalar))
        if self._groups:
            prof.register_histogram(
                "fleet.group_size", (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
            )
            prof.observe_many(
                "fleet.group_size", [len(g.workers) for g in self._groups]
            )

    def _run_group(
        self,
        group: _FleetGroup,
        theta: np.ndarray,
        global_buffers: np.ndarray | None,
        updates: dict[int, WorkerUpdate],
    ) -> None:
        prof = self.profiler
        fleet, n, b = group.model, len(group.workers), group.batch
        with prof.phase("fleet.load"):
            fleet.load_flat_params(theta)
            if (
                global_buffers is not None
                and global_buffers.size
                and fleet.num_buffer_values
            ):
                fleet.load_flat_buffers(global_buffers)
        feat = group.workers[0].dataset.x.shape[1:]
        xb = np.empty((n, b) + feat)
        yb = np.empty((n, b), dtype=np.int64)
        for _ in range(group.local_iters):
            with prof.phase("fleet.sample"):
                for i, w in enumerate(group.workers):
                    idx = w.rng.integers(0, len(w.dataset), size=b)
                    self.last_indices[w.worker_id].append(idx)
                    xb[i] = w.dataset.x[idx]
                    yb[i] = w.dataset.y[idx]
            with prof.phase("fleet.forward"):
                logits = fleet.forward(xb, training=True)
                group.loss_fn(logits, yb)
            with prof.phase("fleet.backward"):
                fleet.backward(group.loss_fn.backward())
            with prof.phase("fleet.step"):
                fleet.sgd_step(group.lrs)
        with prof.phase("fleet.finalize"):
            grads = (theta[None, :] - fleet.get_flat_params()) / group.lrs[:, None]
            bufs = fleet.get_flat_buffers() if fleet.num_buffer_values else None
            for i, w in enumerate(group.workers):
                buffers = bufs[i] if bufs is not None else None
                updates[w.worker_id] = w.finalize_update(grads[i], buffers)
        group.release()
        prof.count("fleet.batched_workers", n * group.local_iters)

    def compute_updates(
        self,
        theta: np.ndarray,
        global_buffers: np.ndarray | None = None,
        exclude: set[int] | None = None,
    ) -> dict[int, WorkerUpdate]:
        """All live workers' uploads for one round, keyed by worker id.

        Returns the dict in ascending worker-id order — the same insertion
        order the scalar loop produces — so downstream consumers that
        iterate it (the lossy network's per-link RNG, the mechanism) see
        an identical sequence.
        """
        exclude = frozenset(exclude or ())
        if exclude != self._grouped_for:
            self._regroup(exclude)
        self.last_indices = {
            w.worker_id: []
            for g in self._groups
            for w in g.workers
        }
        updates: dict[int, WorkerUpdate] = {}
        for group in self._groups:
            self._run_group(group, theta, global_buffers, updates)
        for w in self._scalar:
            updates[w.worker_id] = w.compute_update(theta, global_buffers)
        return {wid: updates[wid] for wid in sorted(updates)}
