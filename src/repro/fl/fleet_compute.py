"""Fleet-batched local training: all workers' SGD steps as one kernel.

The scalar trainer asks each worker in turn to run its local minibatch
SGD — N sequential forward/backward passes over N private replicas of
the *same* architecture. :class:`FleetLocalEngine` replaces that loop:
it stacks eligible workers' parameters along a leading worker axis (see
:mod:`repro.nn.fleet`) and runs each local step for the whole fleet as
single batched NumPy calls.

Fidelity contract (differential-tested to <= 1e-8 against the scalar
path, and byte-identical where only layout changes):

* **Minibatch sampling** draws through each worker's *own*
  ``np.random.default_rng(seed)`` generator, one ``integers`` call per
  worker per local iteration — the exact calls the scalar
  ``Worker._local_gradient`` makes, in the same per-worker order — so
  every worker's RNG stream is reproduced index-for-index and any draws
  an attacker makes afterwards (coin flips, noise) line up too.
* **Attacker transforms** (sign-flip, probabilistic, noise-calibration,
  collusion, sample-count fraud) commute with batching: they only read
  the finished local gradient, so they run post-hoc per row via
  :meth:`Worker.finalize_update`.
* **Fallbacks**: workers with a custom optimizer, a fleet-ineligible
  architecture (e.g. Dropout), a heterogeneous ``model_fn``, or no local
  training at all (free-riders) transparently keep the scalar
  ``compute_update`` path; eligible workers are grouped by architecture
  signature + effective batch size + local iteration count, each group
  batched independently.

Parallel execution (``backend="thread"`` / ``"process"``, PR 7): fleet
groups are cut into one shard per pool slot and dispatched through an
:class:`~repro.parallel.backend.ExecutionBackend`. Each worker's draws
still come from its own generator in the same order (threads sample
in-task over disjoint worker sets; the process path samples parent-side
and ships the index plan), shard results reduce in shard order, and
``finalize_update`` always runs where the worker's RNG lives — so every
backend is byte-identical to serial. Shard tasks never touch the shared
telemetry hub; the coordinating thread folds pool stats into
``parallel.*`` afterwards.
"""

from __future__ import annotations

import itertools
import math
import weakref

import numpy as np

from ..nn.fleet import FleetSequential, FleetSoftmaxCrossEntropy, fleet_signature
from ..parallel.backend import ExecutionBackend, emit_parallel_telemetry, make_backend
from ..parallel.blas import blas_limits
from ..parallel.fleet_tasks import (
    FleetShardState,
    evict_shard_state,
    fleet_shard_task,
)
from ..population.sharding import SharedGradientBuffer, balanced_shards
from ..profiling import Profiler, get_profiler
from ..telemetry import Telemetry
from .workers import Worker, WorkerUpdate

__all__ = ["FleetLocalEngine"]

#: smallest shard worth a dispatch — below this, task overhead dominates
_MIN_PARALLEL_SHARD = 8

#: engine nonces, so state keys stay unique across engine rebuilds that
#: share one process pool (trainer cohort reselection)
_ENGINE_SEQ = itertools.count()


class _FleetGroup:
    """One batch of workers sharing architecture, batch size and iters.

    With ``persistent=False`` (shard-streaming mode) the stacked
    :class:`FleetSequential` is built lazily per round and released
    afterwards, so peak parameter memory is one shard's worth instead of
    the whole cohort's.
    """

    def __init__(self, workers: list[Worker], persistent: bool = True):
        self.workers = workers
        self._persistent = persistent
        self._model: FleetSequential | None = (
            FleetSequential(workers[0].model, len(workers)) if persistent else None
        )
        self.loss_fn = FleetSoftmaxCrossEntropy()
        self.lrs = np.asarray([w.lr for w in workers], dtype=np.float64)
        self.batch = min(workers[0].batch_size, len(workers[0].dataset))
        self.local_iters = workers[0].local_iters

    @property
    def model(self) -> FleetSequential:
        if self._model is None:
            self._model = FleetSequential(
                self.workers[0].model, len(self.workers)
            )
        return self._model

    def release(self) -> None:
        """Drop the stacked replica between rounds (shard mode only)."""
        if not self._persistent:
            self._model = None


def _group_key(worker: Worker) -> tuple | None:
    """Grouping key for fleet batching, or ``None`` for scalar fallback."""
    if not worker.trains_locally or worker.optimizer is not None:
        return None
    sig = fleet_signature(worker.model)
    if sig is None:
        return None
    return (
        sig,
        worker.dataset.x.shape[1:],
        min(worker.batch_size, len(worker.dataset)),
        worker.local_iters,
    )


def _close_shm_buffers(buffers: dict) -> None:
    """Parent-side shm release; module-level for the weakref finalizer."""
    for buf in buffers.values():
        buf.close()
    buffers.clear()


class FleetLocalEngine:
    """Computes every worker's round update with fleet-batched kernels."""

    def __init__(
        self,
        workers: list[Worker],
        profiler: Profiler | None = None,
        shard_size: int | None = None,
        backend: ExecutionBackend | str | None = None,
    ):
        if shard_size is not None and shard_size <= 0:
            raise ValueError("shard_size must be positive (or None)")
        self.workers = sorted(workers, key=lambda w: w.worker_id)
        self.profiler = profiler if profiler is not None else get_profiler()
        # Shard streaming: cap every fleet group at ``shard_size`` workers
        # and build/release each shard's stacked replica lazily, bounding
        # peak parameter memory by shard size instead of cohort size. The
        # per-worker arithmetic is independent of the stacking axis, so
        # sharded results are bit-identical to the unsharded fleet (see
        # tests/population/test_shard_streaming.py).
        self.shard_size = shard_size
        self.backend = make_backend(backend) if isinstance(backend, str) else backend
        self._groups: list[_FleetGroup] = []
        self._scalar: list[Worker] = []
        self._grouped_for: frozenset[int] | None = None
        # Last round's minibatch draws, ``{worker_id: [indices per iter]}``
        # — kept for the RNG-fidelity tests; negligible memory.
        self.last_indices: dict[int, list[np.ndarray]] = {}
        # Process-backend bookkeeping: which (state key, slot) pairs have
        # been replicated, and each group's persistent gradient segment.
        self._engine_id = next(_ENGINE_SEQ)
        self._state_epoch = 0
        self._sent_state: set[tuple] = set()
        self._shm_bufs: dict[int, SharedGradientBuffer] = {}
        self._finalizer = weakref.finalize(
            self, _close_shm_buffers, self._shm_bufs
        )

    @property
    def _parallel(self) -> bool:
        return self.backend is not None and self.backend.name != "serial"

    def close(self) -> None:
        """Release process-side shard state and shm segments (idempotent).

        The shared execution backend itself is owned by the trainer and
        stays up; this only unwinds what *this* engine replicated into it.
        """
        self._evict_process_state()
        self._finalizer()

    def _evict_process_state(self) -> None:
        """Drop replicated shard state from every pool slot, then unlink."""
        backend = self.backend
        if self._sent_state and backend is not None and backend.name == "process":
            keys = tuple({key for key, _slot in self._sent_state})
            names = tuple(
                buf.name for buf in self._shm_bufs.values() if buf.is_shared
            )
            try:
                # One task per slot: slot_for(i) = i % pool_size walks
                # every slot exactly once.
                backend.run(
                    [(evict_shard_state, (keys, names))] * backend.pool_size
                )
            except Exception:  # pragma: no cover - dead pool during teardown
                pass
        self._sent_state = set()
        self._state_epoch += 1
        _close_shm_buffers(self._shm_bufs)

    def _split_members(self, members: list[Worker]) -> list[tuple[list[Worker], bool]]:
        """Cut one architecture group into fleet shards for the backend.

        Serial + no shard cap: one persistent group (the fast path).
        Explicit ``shard_size``: fixed-size windows, lazily-built replicas
        (the memory-bounding contract from PR 6). Parallel + auto: one
        near-equal shard per pool slot, floored at ``_MIN_PARALLEL_SHARD``
        workers so task overhead never dominates tiny cohorts.
        """
        n = len(members)
        if self.shard_size is not None:
            if n <= self.shard_size:
                return [(members, True)]
            return [
                (members[lo : lo + self.shard_size], False)
                for lo in range(0, n, self.shard_size)
            ]
        if self._parallel and self.backend.pool_size > 1:
            shards = min(
                self.backend.pool_size,
                max(1, math.ceil(n / _MIN_PARALLEL_SHARD)),
            )
            if shards > 1:
                persistent = self.backend.name == "thread"
                return [
                    (members[lo:hi], persistent)
                    for lo, hi in balanced_shards(n, shards)
                ]
        # Process backend never touches the parent-side stacked replica,
        # so keep the group lazy there even when unsplit.
        persistent = not (
            self._parallel and self.backend.name == "process"
        )
        return [(members, persistent)]

    def _regroup(self, exclude: frozenset[int]) -> None:
        """(Re)build fleet groups for the current live-worker set."""
        self._evict_process_state()
        by_key: dict[tuple, list[Worker]] = {}
        self._scalar = []
        for w in self.workers:
            if w.worker_id in exclude:
                continue
            key = _group_key(w)
            if key is None:
                self._scalar.append(w)
            else:
                by_key.setdefault(key, []).append(w)
        self._groups = []
        for members in by_key.values():
            for shard_members, persistent in self._split_members(members):
                self._groups.append(_FleetGroup(shard_members, persistent))
        self._grouped_for = exclude
        # Fleet-shape telemetry, re-emitted only when the grouping
        # actually changes (worker failure, reselection) — near-zero
        # steady-state cost, and the trace records every fleet reshape.
        prof = self.profiler
        prof.gauge("fleet.groups", len(self._groups))
        prof.gauge("fleet.scalar_workers", len(self._scalar))
        if self._groups:
            prof.register_histogram(
                "fleet.group_size", (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
            )
            prof.observe_many(
                "fleet.group_size", [len(g.workers) for g in self._groups]
            )

    def _run_group(
        self,
        group: _FleetGroup,
        theta: np.ndarray,
        global_buffers: np.ndarray | None,
        updates: dict[int, WorkerUpdate],
        prof: Profiler | None = None,
    ) -> None:
        prof = self.profiler if prof is None else prof
        fleet, n, b = group.model, len(group.workers), group.batch
        with prof.phase("fleet.load"):
            fleet.load_flat_params(theta)
            if (
                global_buffers is not None
                and global_buffers.size
                and fleet.num_buffer_values
            ):
                fleet.load_flat_buffers(global_buffers)
        feat = group.workers[0].dataset.x.shape[1:]
        xb = np.empty((n, b) + feat)
        yb = np.empty((n, b), dtype=np.int64)
        for _ in range(group.local_iters):
            with prof.phase("fleet.sample"):
                for i, w in enumerate(group.workers):
                    idx = w.rng.integers(0, len(w.dataset), size=b)
                    self.last_indices[w.worker_id].append(idx)
                    xb[i] = w.dataset.x[idx]
                    yb[i] = w.dataset.y[idx]
            with prof.phase("fleet.forward"):
                logits = fleet.forward(xb, training=True)
                group.loss_fn(logits, yb)
            with prof.phase("fleet.backward"):
                fleet.backward(group.loss_fn.backward())
            with prof.phase("fleet.step"):
                fleet.sgd_step(group.lrs)
        with prof.phase("fleet.finalize"):
            grads = (theta[None, :] - fleet.get_flat_params()) / group.lrs[:, None]
            bufs = fleet.get_flat_buffers() if fleet.num_buffer_values else None
            for i, w in enumerate(group.workers):
                buffers = bufs[i] if bufs is not None else None
                updates[w.worker_id] = w.finalize_update(grads[i], buffers)
        group.release()
        prof.count("fleet.batched_workers", n * group.local_iters)

    def _run_groups_threaded(
        self,
        theta: np.ndarray,
        global_buffers: np.ndarray | None,
        updates: dict[int, WorkerUpdate],
    ) -> None:
        """Thread path: the serial kernel body per shard, GIL-released GEMMs.

        Safe without locks by construction: worker sets are disjoint
        across groups, so the per-worker RNG draws, ``last_indices``
        appends and ``updates`` writes all touch distinct keys. Each task
        profiles into a disabled hub — the shared hub is single-writer —
        and the coordinator emits the pooled stats afterwards.
        """
        quiet = Telemetry(enabled=False)
        tasks = [
            (self._run_group, (group, theta, global_buffers, updates, quiet))
            for group in self._groups
        ]
        with blas_limits(1):
            self.backend.run(tasks)
        emit_parallel_telemetry(self.profiler, "local_compute", self.backend)
        for group in self._groups:
            self.profiler.count(
                "fleet.batched_workers", len(group.workers) * group.local_iters
            )

    def _shm_for(self, group_idx: int, rows: int, dim: int) -> SharedGradientBuffer:
        buf = self._shm_bufs.get(group_idx)
        if buf is None or buf.rows != rows or buf.dim != dim:
            if buf is not None:
                buf.close()
            buf = SharedGradientBuffer(rows, dim, shared=True)
            self._shm_bufs[group_idx] = buf
        return buf

    def _run_groups_process(
        self,
        theta: np.ndarray,
        global_buffers: np.ndarray | None,
        updates: dict[int, WorkerUpdate],
    ) -> None:
        """Process path: parent-drawn index plans, lazily-replicated state.

        The parent performs every RNG call the serial path would (its
        generators stay authoritative for later rounds), ships the
        ``(local_iters, n, b)`` minibatch plan, and each slot process
        replays the stacked GEMM steps over state it received exactly
        once — writing its gradient block straight into this engine's
        shared-memory segment when the platform allows. Attacker
        transforms (``finalize_update``) run parent-side afterwards, in
        group order, so their RNG draws line up draw-for-draw with serial.
        """
        backend = self.backend
        dim = theta.size
        tasks = []
        for gi, group in enumerate(self._groups):
            n, b = len(group.workers), group.batch
            indices = np.empty((group.local_iters, n, b), dtype=np.int64)
            for it in range(group.local_iters):
                for i, w in enumerate(group.workers):
                    idx = w.rng.integers(0, len(w.dataset), size=b)
                    self.last_indices[w.worker_id].append(idx)
                    indices[it, i] = idx
            key = (self._engine_id, self._state_epoch, gi)
            # Task gi always lands on slot_for(gi) — the backend's stable
            # assignment — so "already replicated there" is a parent fact.
            state = None
            if (key, backend.slot_for(gi)) not in self._sent_state:
                state = FleetShardState(
                    template=group.workers[0].model,
                    xs=[w.dataset.x for w in group.workers],
                    ys=[w.dataset.y for w in group.workers],
                    lrs=group.lrs,
                    batch=b,
                    local_iters=group.local_iters,
                )
                self._sent_state.add((key, backend.slot_for(gi)))
            buf = self._shm_for(gi, n, dim)
            shm_spec = (buf.name, n, dim, 0) if buf.is_shared else None
            tasks.append(
                (fleet_shard_task, (key, state, theta, global_buffers, indices, shm_spec))
            )
        results = backend.run(tasks)
        emit_parallel_telemetry(self.profiler, "local_compute", backend)
        with self.profiler.phase("fleet.finalize"):
            for gi, (group, (grads, bufs)) in enumerate(zip(self._groups, results)):
                if grads is None:
                    grads = self._shm_bufs[gi].array
                for i, w in enumerate(group.workers):
                    buffers = bufs[i] if bufs is not None else None
                    updates[w.worker_id] = w.finalize_update(grads[i], buffers)
                self.profiler.count(
                    "fleet.batched_workers", len(group.workers) * group.local_iters
                )

    def compute_updates(
        self,
        theta: np.ndarray,
        global_buffers: np.ndarray | None = None,
        exclude: set[int] | None = None,
    ) -> dict[int, WorkerUpdate]:
        """All live workers' uploads for one round, keyed by worker id.

        Returns the dict in ascending worker-id order — the same insertion
        order the scalar loop produces — so downstream consumers that
        iterate it (the lossy network's per-link RNG, the mechanism) see
        an identical sequence.
        """
        exclude = frozenset(exclude or ())
        if exclude != self._grouped_for:
            self._regroup(exclude)
        self.last_indices = {
            w.worker_id: []
            for g in self._groups
            for w in g.workers
        }
        updates: dict[int, WorkerUpdate] = {}
        if not self._parallel or not self._groups:
            for group in self._groups:
                self._run_group(group, theta, global_buffers, updates)
        elif self.backend.name == "thread":
            self._run_groups_threaded(theta, global_buffers, updates)
        else:
            self._run_groups_process(theta, global_buffers, updates)
        for w in self._scalar:
            updates[w.worker_id] = w.compute_update(theta, global_buffers)
        return {wid: updates[wid] for wid in sorted(updates)}
