"""Federated training loop over the polycentric protocol (paper S3.2).

One :class:`FederatedTrainer` drives all three architectures: M = 1 server
is centralized, 1 < M < N polycentric, M = N decentralized — exactly the
generalization the paper claims in S3.2. Gradient uploads travel over the
lossy :class:`~repro.comm.Network`; a lost slice makes that worker's round
an *uncertain event* (neither positive nor negative for reputation).

A pluggable mechanism (e.g. :class:`repro.core.FIFLMechanism`) inspects the
per-server slices each round and decides which workers' gradients enter the
aggregate; with no mechanism every delivered update is accepted, which is
the undefended baseline of Figures 7, 8 and 10.

Population-first surface (cross-device scale)
---------------------------------------------
The primary constructor takes a
:class:`~repro.population.WorkerPopulation` plus an optional cohort size
and :class:`~repro.population.CohortSampler`::

    FederatedTrainer(model, population=pop, cohort_size=64,
                     sampler="reputation", server_ranks=[0, 1], ...)

With a full-population cohort (or no sampler at all) the trainer runs in
**static** mode: every worker is materialized once and the round loop is
the classic cross-silo path, bit-for-bit identical to the legacy
``workers=[...]`` surface. With a sampler or a sub-population cohort it
runs in **dynamic** mode: each round samples a cohort (server ranks
always included — they produce the detection benchmarks), materializes
only those workers, trains, and writes the round's reputation verdicts
back into the population's out-of-core store. Per-round cost is
O(cohort), never O(population).

The legacy ``workers=[...]`` list remains accepted through the single
deprecation pathway :meth:`WorkerPopulation.from_workers`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..comm import Network, polycentric_topology, validate_roles
from ..datasets import Dataset
from ..nn import Sequential
from ..parallel.backend import ExecutionBackend, make_backend
from ..profiling import get_profiler, profile_delta
from ..sim import FaultScenario, SimRoundRunner, Simulator, make_latency
from .evaluation import evaluate
from .fleet_compute import FleetLocalEngine
from .gradients import fedavg, recombine, split_views
from .workers import Worker, WorkerUpdate

__all__ = [
    "RoundContext",
    "RoundDecision",
    "RoundMechanism",
    "RoundRecord",
    "TrainingHistory",
    "FederatedTrainer",
]

# The workers=[...] deprecation fires once per process: legacy suites
# construct hundreds of trainers and the guidance does not change.
_WARNED_LEGACY_WORKERS = False


def _warn_legacy_workers() -> None:
    global _WARNED_LEGACY_WORKERS
    if not _WARNED_LEGACY_WORKERS:
        _WARNED_LEGACY_WORKERS = True
        warnings.warn(
            "FederatedTrainer(workers=[...]) is deprecated; pass "
            "population=WorkerPopulation.from_workers(workers) (or build a "
            "WorkerPopulation directly) instead",
            DeprecationWarning,
            stacklevel=4,
        )


@dataclass
class RoundContext:
    """Everything a mechanism may inspect in one communication round."""

    round_idx: int
    global_params: np.ndarray
    server_ranks: list[int]
    # worker_id -> {server_rank: delivered gradient slice}
    slices: dict[int, dict[int, np.ndarray]]
    # worker_id -> full update (for ground truth / full-vector scoring)
    updates: dict[int, WorkerUpdate]
    # workers whose upload was (partly) lost this round: uncertain events
    uncertain: set[int]
    sample_counts: dict[int, int]


@dataclass
class RoundDecision:
    """A mechanism's verdict for one round."""

    # worker_id -> r_i (True = honest/accept, False = reject)
    accept: dict[int, bool]
    # free-form per-round records (scores, reputations, rewards, ...)
    records: dict = field(default_factory=dict)


class RoundMechanism(Protocol):
    """Protocol implemented by FIFL (and ablation mechanisms)."""

    def process_round(self, ctx: RoundContext) -> RoundDecision: ...


class _AcceptAll:
    """Default mechanism: accept every delivered update (no defence)."""

    def process_round(self, ctx: RoundContext) -> RoundDecision:
        return RoundDecision(accept={w: True for w in ctx.slices})


@dataclass
class RoundRecord:
    """Per-round training telemetry."""

    round_idx: int
    test_loss: float | None
    test_acc: float | None
    accepted: dict[int, bool]
    uncertain: set[int]
    mechanism_records: dict
    grad_norm: float
    #: virtual seconds the round took (0.0 outside fault scenarios)
    duration_s: float = 0.0
    #: simulation detail when running under a FaultScenario: stragglers,
    #: offline ranks, retries, late workers, per-worker wall-clock
    sim: dict | None = None
    #: True when the round produced no usable updates (e.g. every sampled
    #: cohort member was offline) and the global model was left untouched
    skipped: bool = False


@dataclass
class TrainingHistory:
    """Full training trace returned by :meth:`FederatedTrainer.run`."""

    rounds: list[RoundRecord] = field(default_factory=list)
    # per-phase wall-clock/counters for this run (see repro.profiling):
    # {"timings": {phase: {"seconds", "calls"}}, "counters": {...}}
    profile: dict = field(default_factory=dict)
    # ResourceProbe summary for this run when a probe was attached
    # (see repro.perf.resources): rss start/peak/growth, GC pauses, ...
    resources: dict = field(default_factory=dict)

    def series(self, key: str) -> list:
        """Extract one telemetry field across rounds (None entries kept)."""
        return [getattr(r, key) for r in self.rounds]

    def final_accuracy(self) -> float | None:
        """Last recorded test accuracy."""
        for r in reversed(self.rounds):
            if r.test_acc is not None:
                return r.test_acc
        return None


class FederatedTrainer:
    """Drives synchronous federated rounds over a lossy network."""

    def __init__(
        self,
        model: Sequential,
        workers=None,
        server_ranks: list[int] | None = None,
        test_data: Dataset | None = None,
        mechanism: RoundMechanism | None = None,
        server_lr: float | object = 0.1,
        drop_prob: float = 0.0,
        seed: int = 0,
        reselect_every: int = 0,
        local_engine: str = "fleet",
        scenario: FaultScenario | None = None,
        monitor=None,
        probe=None,
        *,
        population=None,
        cohort_size: int | None = None,
        sampler=None,
        fleet_shard_size: int | None = None,
        backend: str | ExecutionBackend = "serial",
        max_workers: int | None = None,
    ):
        # Break the repro.population -> repro.fl.workers -> repro.fl import
        # cycle: the population package imports worker classes at module
        # level, so the trainer must reach back lazily.
        from ..population import WorkerPopulation, make_sampler

        if population is None and isinstance(workers, WorkerPopulation):
            # Population passed positionally in the workers slot: the
            # population-first call shape without keyword ceremony.
            population, workers = workers, None
        if population is not None and workers is not None:
            raise ValueError("pass either population= or workers=, not both")
        if population is None:
            if not workers:
                raise ValueError("need at least one worker")
            _warn_legacy_workers()
            population = WorkerPopulation.from_workers(workers)
            self._owns_population = True
        else:
            if not isinstance(population, WorkerPopulation):
                raise TypeError(
                    f"population must be a WorkerPopulation, got "
                    f"{type(population).__name__}"
                )
            self._owns_population = False
        self.population = population
        if server_ranks is None:
            raise ValueError("server_ranks is required")
        # Satellite bugfix: an oversized cohort used to surface only as a
        # cryptic sampler IndexError deep inside the first round.
        if cohort_size is not None:
            if cohort_size <= 0:
                raise ValueError("cohort_size must be positive")
            if cohort_size > population.size:
                raise ValueError(
                    f"cohort_size {cohort_size} exceeds population size "
                    f"{population.size}"
                )
        if isinstance(sampler, str):
            sampler = make_sampler(sampler, seed=seed)
        # server_lr may be a constant or a schedule (callable round -> lr)
        if callable(server_lr):
            self._lr_schedule = server_lr
        else:
            if server_lr <= 0:
                raise ValueError("server_lr must be positive")
            self._lr_schedule = None
        if reselect_every < 0:
            raise ValueError("reselect_every must be non-negative")
        self.model = model
        self.num_workers = population.size
        self.server_ranks = sorted(set(server_ranks))
        self.cohort_size = cohort_size
        self.sampler = sampler
        self.fleet_shard_size = fleet_shard_size
        # Dynamic (cross-device) mode: an explicit sampler or a
        # sub-population cohort means per-round sampling + lazy
        # materialization. Otherwise static mode keeps the classic
        # cross-silo loop, bit-for-bit.
        self._dynamic = sampler is not None or (
            cohort_size is not None and cohort_size < population.size
        )
        if self._dynamic:
            if self._owns_population:
                raise ValueError(
                    "cohort sampling needs an explicit population= "
                    "(the legacy workers=[...] surface is static-only)"
                )
            if scenario is not None:
                raise ValueError(
                    "cohort sampling and FaultScenario are mutually "
                    "exclusive; model device availability/churn on the "
                    "WorkerPopulation instead"
                )
            if self.sampler is None:
                self.sampler = make_sampler("uniform", seed=seed)
            if self.cohort_size is None:
                self.cohort_size = population.size
            bad = [r for r in self.server_ranks if not 0 <= r < self.num_workers]
            if bad or not self.server_ranks:
                raise ValueError(
                    f"server ranks {bad} outside [0, {self.num_workers})"
                )
            # polycentric_topology materializes an O(N·M) networkx graph —
            # at 10^6 workers that is neither affordable nor needed: the
            # round loop only ever touches cohort-sized structures.
            self.topology = None
            self.workers: list[Worker] = []
        else:
            self.workers = population.checkout(range(population.size))
            # Validate S ⊂ W via the topology module (raises on bad ranks).
            self.topology = polycentric_topology(
                self.num_workers, self.server_ranks
            )
            validate_roles(self.topology)
        self.test_data = test_data
        self.mechanism: RoundMechanism = mechanism if mechanism is not None else _AcceptAll()
        self.server_lr = server_lr if not callable(server_lr) else None
        self.seed = seed
        # A FaultScenario moves the upload/collection phase onto the
        # discrete-event kernel: the network delivers through the
        # simulator's virtual clock and the round closes on a deadline.
        self.scenario = scenario
        self._sim_runner: SimRoundRunner | None = None
        if scenario is not None:
            sim = Simulator(seed=(seed, scenario.seed, 0x51D))
            self.network = Network(
                self.num_workers,
                drop_prob=drop_prob,
                seed=seed,
                latency=make_latency(scenario.latency),
                sim=sim,
            )
        else:
            self.network = Network(self.num_workers, drop_prob=drop_prob, seed=seed)
        # S4.5: re-form the server cluster from the highest-reputation
        # workers every ``reselect_every`` rounds (0 = static cluster).
        # Requires a mechanism exposing ``recommend_servers(m)``.
        self.reselect_every = reselect_every
        if reselect_every and not hasattr(self.mechanism, "recommend_servers"):
            raise ValueError(
                "reselect_every needs a mechanism with recommend_servers()"
            )
        self._failed: set[int] = set()
        self.profiler = get_profiler()
        # Local-compute engine: "fleet" batches all homogeneous workers'
        # local SGD into stacked kernels (repro.fl.fleet_compute);
        # "scalar" keeps the per-worker reference loop. The two agree to
        # <= 1e-8 (differential-tested), so fleet is the default.
        if local_engine not in ("fleet", "scalar"):
            raise ValueError(
                f"local_engine must be 'fleet' or 'scalar', got {local_engine!r}"
            )
        self.local_engine = local_engine
        # Execution backend (PR 7): one pool owned by the trainer, shared
        # by the fleet engine's local-SGD shards and — when the mechanism
        # advertises attach_backend() — the round kernels' row shards.
        # "serial" is the differential oracle and the default.
        self.backend = make_backend(backend, max_workers)
        if hasattr(self.mechanism, "attach_backend"):
            self.mechanism.attach_backend(self.backend)
        self._fleet: FleetLocalEngine | None = None
        self._fleet_key: tuple[int, ...] | None = None
        if scenario is not None:
            self._sim_runner = SimRoundRunner(self, scenario)
        # Optional repro.monitor.Monitor: installed as a telemetry sink
        # for the duration of run(), with a flush after every round so
        # invariants are checked at round granularity, and a post-mortem
        # dump if training raises. The monitor never emits into the hub,
        # so attaching it does not change the trace.
        self.monitor = monitor
        # Optional repro.perf.ResourceProbe, sampled at round boundaries
        # during run(). Samples live on a side stream (forwarded to the
        # monitor via observe_resource, never emitted into the hub), so a
        # probed run's seeded trace stays byte-identical.
        self.probe = probe

    @property
    def num_servers(self) -> int:
        return len(self.server_ranks)

    def fail_node(self, rank: int) -> None:
        """Simulate a device crash: the node stops computing and all of
        its links go dark (S3.2's fault-tolerance discussion).

        A failed plain worker just disappears from the federation. A
        failed *server* silently loses every slice addressed to it, which
        stalls aggregation in a static cluster — the paper's
        "decentralized architecture lacks fault tolerance" scenario —
        unless re-selection replaces it.
        """
        if not 0 <= rank < self.num_workers:
            raise ValueError(f"rank {rank} outside [0, {self.num_workers})")
        self._failed.add(rank)
        if self._dynamic:
            # Cross-device mode: the failed id is simply excluded from
            # every future cohort — no O(population) link sweep needed.
            return
        for other in range(self.num_workers):
            self.network.set_link_drop_prob(rank, other, 1.0)
            self.network.set_link_drop_prob(other, rank, 1.0)

    @property
    def failed_nodes(self) -> set[int]:
        return set(self._failed)

    def node_comm_load(self) -> dict[int, int]:
        """Bytes moved through each node (sent + received) so far.

        The max over nodes is the deployment bottleneck S3.2 discusses:
        one central server carries O(N·P) per round, M polycentric
        servers carry O(N·P/M) each, and fully decentralized nodes carry
        O(P) regardless of N.
        """
        if self._dynamic:
            # O(population) dicts are off the table at cross-device scale;
            # report only the nodes that actually moved bytes.
            load: dict[int, int] = {}
            for (src, dst), nbytes in self.network.bytes_sent.items():
                load[src] = load.get(src, 0) + nbytes
                load[dst] = load.get(dst, 0) + nbytes
            return load
        load = {n: 0 for n in range(self.num_workers)}
        for (src, dst), nbytes in self.network.bytes_sent.items():
            load[src] += nbytes
            load[dst] += nbytes
        return load

    def _round_lr(self, round_idx: int) -> float:
        """The server learning rate for this round (constant or scheduled)."""
        if self._lr_schedule is not None:
            lr = float(self._lr_schedule(round_idx))
            if lr <= 0:
                raise ValueError(f"schedule produced non-positive lr {lr}")
            return lr
        return self.server_lr

    # -- cohort selection (dynamic mode) --------------------------------------

    def _select_cohort(self, round_idx: int) -> list[Worker]:
        """Sample, availability-filter and materialize this round's cohort.

        Server ranks are pinned into every cohort (they produce the
        detection benchmarks ``g_j^j``); they skip the per-round
        availability draw but still respect churn and injected failures.
        """
        prof = self.profiler
        pop = self.population
        pop.begin_round(round_idx)
        sampled = self.sampler.sample(
            round_idx, pop, self.cohort_size, required=self.server_ranks
        )
        required = set(self.server_ranks)
        live: list[int] = []
        for wid in sampled:
            wid = int(wid)
            if wid in self._failed:
                continue
            if wid in required:
                if pop.is_live(wid):
                    live.append(wid)
            elif pop.is_available(wid, round_idx):
                live.append(wid)
        cohort = pop.checkout(live, round_idx=round_idx)
        coverage = pop.coverage()
        prof.count("trainer.cohort_workers", len(live))
        prof.gauge("population.cohort_live", len(live))
        prof.gauge("population.coverage", coverage)
        prof.event(
            "population.cohort",
            {
                "round": round_idx,
                "population_size": pop.size,
                "cohort_target": self.cohort_size,
                "sampled": int(len(sampled)),
                "live": len(live),
                "offline": int(len(sampled)) - len(live),
                "coverage": coverage,
            },
        )
        return cohort

    def _fleet_for(self, workers: list[Worker]) -> FleetLocalEngine:
        """The fleet engine for this round's worker set (rebuilt on change)."""
        key = tuple(w.worker_id for w in workers)
        if self._fleet is None or self._fleet_key != key:
            if self._fleet is not None:
                # Unwind the old cohort's replicated state / shm segments
                # before the pool starts caching the new one's.
                self._fleet.close()
            self._fleet = FleetLocalEngine(
                workers,
                profiler=self.profiler,
                shard_size=self.fleet_shard_size,
                backend=self.backend,
            )
            self._fleet_key = key
        return self._fleet

    def _skipped_round(self, round_idx: int, reason: str) -> RoundRecord:
        """Record a round that produced no usable updates (model untouched)."""
        prof = self.profiler
        prof.count("trainer.skipped_rounds")
        prof.event(
            "trainer.skipped_round", {"round": round_idx, "reason": reason}
        )
        test_loss = test_acc = None
        if self.test_data is not None:
            with prof.phase("trainer.evaluate"):
                test_loss, test_acc = evaluate(self.model, self.test_data)
        return RoundRecord(
            round_idx=round_idx,
            test_loss=test_loss,
            test_acc=test_acc,
            accepted={},
            uncertain=set(),
            mechanism_records={"skipped": reason},
            grad_norm=0.0,
            skipped=True,
        )

    # -- one communication round ----------------------------------------------

    def _upload_slices(
        self, updates: dict[int, WorkerUpdate], round_idx: int
    ) -> tuple[dict[int, dict[int, np.ndarray]], set[int]]:
        """Workers split gradients and send slice j to server j (step 1.3).

        Slicing uses the memoized boundary table and read-only views —
        no per-worker copies; the bytes-on-the-wire accounting of the
        network substrate is unchanged.
        """
        tag = f"slice:{round_idx}"
        for wid, upd in updates.items():
            parts = split_views(upd.gradient, self.num_servers)
            for j, srv in enumerate(self.server_ranks):
                self.network.send(wid, srv, tag, (j, parts[j]))
        delivered: dict[int, dict[int, np.ndarray]] = {}
        uncertain: set[int] = set()
        for wid in updates:
            got: dict[int, np.ndarray] = {}
            for srv in self.server_ranks:
                msg = self.network.recv(srv, wid, tag)
                if msg is not None:
                    _, part = msg.payload
                    got[srv] = part
            if len(got) == self.num_servers:
                delivered[wid] = got
            else:
                # Any lost slice -> the round is unidentifiable for this
                # worker: an SLM uncertain event, excluded from aggregation.
                uncertain.add(wid)
        return delivered, uncertain

    def run_round(self, round_idx: int) -> RoundRecord:
        """Execute one synchronous round and update the global model."""
        with self.profiler.span("trainer.round", kind="round", round=round_idx):
            return self._run_round(round_idx)

    def _run_round(self, round_idx: int) -> RoundRecord:
        prof = self.profiler
        plan = None
        if self._sim_runner is not None:
            # Fault scenario: apply churn/partitions and draw this
            # round's compute-time plan before anyone trains.
            plan = self._sim_runner.begin_round(round_idx)
        exclude = (
            self._failed if plan is None else self._failed | set(plan.offline)
        )
        if self._dynamic:
            with prof.phase("trainer.cohort"):
                active = self._select_cohort(round_idx)
            if not active:
                return self._skipped_round(round_idx, "empty cohort")
            if not any(w.worker_id in self.server_ranks for w in active):
                return self._skipped_round(round_idx, "no live server")
        else:
            active = self.workers
        theta = self.model.get_flat_params()
        global_buffers = self.model.get_flat_buffers()
        with prof.phase("trainer.local_compute"):
            if self.local_engine == "fleet":
                updates = self._fleet_for(active).compute_updates(
                    theta, global_buffers, exclude=exclude
                )
            else:
                updates = {
                    w.worker_id: w.compute_update(theta, global_buffers)
                    for w in active
                    if w.worker_id not in exclude
                }
        if self._dynamic and not any(
            srv in updates for srv in self.server_ranks
        ):
            return self._skipped_round(round_idx, "no server update")
        sim_info = None
        with prof.phase("trainer.upload"):
            if self._sim_runner is not None:
                sends = [
                    (wid, split_views(upd.gradient, self.num_servers))
                    for wid, upd in updates.items()
                ]
                delivered, uncertain, sim_info = self._sim_runner.collect(
                    sends, round_idx, plan
                )
            else:
                delivered, uncertain = self._upload_slices(updates, round_idx)
        prof.count("trainer.rounds")
        prof.count("trainer.uncertain_workers", len(uncertain))

        ctx = RoundContext(
            round_idx=round_idx,
            global_params=theta,
            server_ranks=list(self.server_ranks),
            slices=delivered,
            updates=updates,
            uncertain=uncertain,
            sample_counts={w.worker_id: w.num_samples for w in active},
        )
        with prof.phase("trainer.mechanism"):
            decision = self.mechanism.process_round(ctx)
        if not self._owns_population:
            # Round verdicts flow back into the population's out-of-core
            # reputation store, where reputation-weighted samplers (and
            # the next session's analyses) read them.
            reps = decision.records.get("reputations")
            if reps:
                self.population.write_reputations(reps)

        accepted_ids = [w for w in sorted(delivered) if decision.accept.get(w, False)]
        grad_norm = 0.0
        if accepted_ids:
            # Servers aggregate their slice over accepted workers (step 2.2),
            # then slices recombine into the global gradient (step 1.5).
            with prof.phase("trainer.aggregate"):
                weights = [ctx.sample_counts[w] for w in accepted_ids]
                agg_slices = []
                for srv in self.server_ranks:
                    with prof.span(
                        "trainer.server_slice", kind="slice", server=srv
                    ):
                        per_server = [delivered[w][srv] for w in accepted_ids]
                        agg_slices.append(fedavg(per_server, weights))
                global_grad = recombine(agg_slices)
            grad_norm = float(np.linalg.norm(global_grad))
            prof.gauge("trainer.grad_norm", grad_norm)
            lr = self._round_lr(round_idx)
            self.model.set_flat_params(theta - lr * global_grad)
            # Step 1.4: servers broadcast their global slice to every
            # worker. The trainer holds the global model authoritatively,
            # so this pass exists for protocol fidelity — byte accounting
            # and drop statistics per link (the per-node communication
            # load is what S3.2's scalability argument is about).
            tag = f"global:{round_idx}"
            dests = (
                [w.worker_id for w in active]
                if self._dynamic
                else range(self.num_workers)
            )
            for j, srv in enumerate(self.server_ranks):
                for wid in dests:
                    if wid != srv:
                        self.network.send(srv, wid, tag, agg_slices[j])
            # FedAvg-BN: average accepted workers' running statistics into
            # the global model so evaluation normalizes with live stats.
            buffer_vecs = [
                updates[w].buffers
                for w in accepted_ids
                if updates[w].buffers is not None
            ]
            if buffer_vecs and self.model.num_buffer_values:
                weights_b = [
                    ctx.sample_counts[w]
                    for w in accepted_ids
                    if updates[w].buffers is not None
                ]
                self.model.set_flat_buffers(fedavg(buffer_vecs, weights_b))

        if self._sim_runner is not None:
            # Close the downlink tag: broadcast slices still in flight on
            # the virtual clock are discarded, not queued forever.
            self._sim_runner.end_round(round_idx)

        test_loss = test_acc = None
        if self.test_data is not None:
            with prof.phase("trainer.evaluate"):
                test_loss, test_acc = evaluate(self.model, self.test_data)

        return RoundRecord(
            round_idx=round_idx,
            test_loss=test_loss,
            test_acc=test_acc,
            accepted={w: decision.accept.get(w, False) for w in sorted(updates)},
            uncertain=uncertain,
            mechanism_records=decision.records,
            grad_norm=grad_norm,
            duration_s=sim_info["duration_s"] if sim_info else 0.0,
            sim=sim_info,
        )

    def run(self, num_rounds: int, eval_every: int = 1) -> TrainingHistory:
        """Run ``num_rounds`` rounds; evaluate every ``eval_every`` rounds."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if eval_every <= 0:
            raise ValueError("eval_every must be positive")
        history = TrainingHistory()
        saved_test = self.test_data
        before = self.profiler.snapshot()
        monitor = self.monitor
        probe = self.probe
        if monitor is not None:
            # drain events deferred before this run so the monitor only
            # sees (and attributes alerts to) this training run's stream
            self.profiler.flush()
            monitor.install(self.profiler)
        try:
            with self.profiler.span(
                "trainer.run",
                kind="run",
                rounds=num_rounds,
                workers=self.num_workers,
                servers=self.num_servers,
            ):
                for t in range(num_rounds):
                    # Skip expensive evaluation on non-reporting rounds.
                    self.test_data = saved_test if (t % eval_every == 0 or t == num_rounds - 1) else None
                    history.rounds.append(self.run_round(t))
                    if monitor is not None:
                        # Materialize this round's deferred events so the
                        # watchdog sees them before the next round starts
                        # (strict mode raises MonitorError from here).
                        self.profiler.flush()
                    if probe is not None:
                        # Round-boundary resource sample; forwarded to the
                        # monitor on the side stream so the leak/gc-pause
                        # watchdogs see it without touching the trace.
                        sample = probe.sample(t)
                        if sample is not None and monitor is not None:
                            monitor.observe_resource(sample)
                    if self.reselect_every and (t + 1) % self.reselect_every == 0:
                        self._reselect_servers()
        except BaseException as exc:
            if monitor is not None:
                # Crash path: capture the flight-recorder ring. A strict
                # monitor may raise again during this flush — the alert
                # is already recorded, the original exception wins.
                from ..monitor.alerts import MonitorError

                try:
                    self.profiler.flush()
                except MonitorError:
                    pass
                from ..parallel.backend import backend_summary

                monitor.dump_postmortem(
                    f"exception: {type(exc).__name__}",
                    context={"backend": backend_summary(self.backend)},
                )
            raise
        finally:
            # An exception mid-run must not leave the eval-toggling hack
            # permanently stuck with test_data=None.
            self.test_data = saved_test
            if monitor is not None:
                monitor.uninstall()
        # Per-run phase timings: the delta against whatever the (shared)
        # profiler had already accumulated before this run started.
        history.profile = profile_delta(before, self.profiler.snapshot())
        if probe is not None:
            history.resources = probe.summary()
        return history

    def _reselect_servers(self) -> None:
        """S4.5: replace the cluster with the top-reputation workers."""
        try:
            new_ranks = self.mechanism.recommend_servers(  # type: ignore[attr-defined]
                self.num_servers, exclude=self._failed
            )
        except RuntimeError:
            return  # not enough reputations tracked; keep the cluster
        new_ranks = sorted(set(new_ranks))
        if new_ranks == self.server_ranks:
            return
        self.server_ranks = new_ranks
        if not self._dynamic:
            self.topology = polycentric_topology(
                self.num_workers, self.server_ranks
            )
            validate_roles(self.topology)
