"""Model evaluation helpers shared by the trainer and experiments.

Evaluation runs every reporting round over the full test set, so it is a
hot path in its own right. Two properties keep it lean:

* batches are *contiguous views* into the dataset (no per-batch fancy-
  index copies — evaluation order doesn't need shuffling);
* the softmax cross-entropy statistics reuse one preallocated scratch
  buffer across batches instead of re-allocating probability matrices
  per batch, and every forward pass goes through
  ``forward(training=False)`` (eval-mode BatchNorm statistics, no
  backward caches retained).
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from ..nn import Sequential
from ..telemetry import get_telemetry

__all__ = ["evaluate", "accuracy", "batch_views"]


def batch_views(data: Dataset, batch_size: int):
    """Yield ``(x, y)`` contiguous slice views over the dataset in order."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    for start in range(0, len(data), batch_size):
        stop = start + batch_size
        yield data.x[start:stop], data.y[start:stop]


def _batch_stats(
    logits: np.ndarray, labels: np.ndarray, scratch: np.ndarray | None
) -> tuple[float, int, np.ndarray]:
    """``(summed CE loss, correct count, scratch)`` for one batch.

    ``scratch`` is a reusable ``(batch, classes)`` float64 buffer; the
    log-softmax shift is computed into it in place, so only the first
    batch (and a possibly smaller final batch) allocates.
    """
    if scratch is None or scratch.shape != logits.shape:
        scratch = np.empty(logits.shape, dtype=np.float64)
    np.subtract(logits, logits.max(axis=1, keepdims=True), out=scratch)
    rows = np.arange(labels.shape[0])
    shifted_true = scratch[rows, labels].copy()
    np.exp(scratch, out=scratch)
    # -log p(y) = logsumexp(shifted) - shifted[y]
    loss_sum = float((np.log(scratch.sum(axis=1)) - shifted_true).sum())
    correct = int((logits.argmax(axis=1) == labels).sum())
    return loss_sum, correct, scratch


def evaluate(
    model: Sequential, data: Dataset, batch_size: int = 256
) -> tuple[float, float]:
    """Return ``(mean test loss, accuracy)`` over the dataset.

    Batched so convolutional models with large eval sets stay within
    memory; loss is the sample-weighted mean of batch losses.
    """
    tele = get_telemetry()
    n = len(data)
    with tele.span("evaluation.evaluate", samples=n):
        total_loss = 0.0
        correct = 0
        scratch: np.ndarray | None = None
        for x, y in batch_views(data, batch_size):
            logits = model.forward(x, training=False)
            loss_sum, batch_correct, scratch = _batch_stats(logits, y, scratch)
            total_loss += loss_sum
            correct += batch_correct
    tele.count("evaluation.samples", n)
    return total_loss / n, correct / n


def accuracy(model: Sequential, data: Dataset, batch_size: int = 256) -> float:
    """Classification accuracy only."""
    correct = 0
    for x, y in batch_views(data, batch_size):
        correct += int((model.forward(x, training=False).argmax(axis=1) == y).sum())
    return correct / len(data)
