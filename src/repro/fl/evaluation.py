"""Model evaluation helpers shared by the trainer and experiments."""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from ..nn import SoftmaxCrossEntropy, Sequential

__all__ = ["evaluate", "accuracy"]


def evaluate(
    model: Sequential, data: Dataset, batch_size: int = 256
) -> tuple[float, float]:
    """Return ``(mean test loss, accuracy)`` over the dataset.

    Batched so convolutional models with large eval sets stay within
    memory; loss is the sample-weighted mean of batch losses.
    """
    loss_fn = SoftmaxCrossEntropy()
    total_loss = 0.0
    correct = 0
    for x, y in data.batches(batch_size):
        logits = model.predict(x)
        total_loss += loss_fn(logits, y) * x.shape[0]
        correct += int((logits.argmax(axis=1) == y).sum())
    n = len(data)
    return total_loss / n, correct / n


def accuracy(model: Sequential, data: Dataset, batch_size: int = 256) -> float:
    """Classification accuracy only."""
    correct = 0
    for x, y in data.batches(batch_size):
        correct += int((model.predict(x).argmax(axis=1) == y).sum())
    return correct / len(data)
