"""``python -m repro.service`` — operate a federation from the shell.

Subcommands:

* ``run``     — build a preset federation and advance it (checkpointing
  per policy); ``--kill-after-round`` SIGKILLs the process right after
  that round's checkpoint, for crash-recovery drills;
* ``resume``  — restart from the latest (or a named) snapshot and keep
  going — byte-identical to a process that never died;
* ``status``  — snapshot inventory of a service directory;
* ``inspect`` — deep integrity check + manifest detail of one snapshot.

``--trace FILE`` streams the seeded telemetry trace to JSONL with
``fsync_on_flush`` durability; ``--deterministic-clock`` swaps in a
:class:`~repro.telemetry.TickClock` so traces are byte-identical across
runs — together they make kill/resume differentials scriptable (see
``examples/service_resume.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..experiments.common import FedExpConfig, sign_flip
from ..sim import FaultScenario
from ..sim.latency import LatencyConfig
from ..telemetry import JsonlSink, MemorySink, Telemetry, TickClock, set_telemetry
from .service import FederationService, ServiceConfig
from .snapshot import (
    SnapshotError,
    latest_snapshot,
    list_snapshots,
    read_manifest,
    verify_snapshot,
)

__all__ = ["main", "make_preset", "PRESETS"]


def _preset_blobs_fifl(seed: int) -> ServiceConfig:
    """Small cross-silo FIFL federation with one sign-flip attacker and
    a full ledger — the walkthrough / differential workhorse."""
    return ServiceConfig(
        fed=FedExpConfig(
            dataset="blobs",
            num_workers=8,
            samples_per_worker=40,
            test_samples=160,
            rounds=30,
            eval_every=5,
            server_ranks=(0, 1),
            seed=seed,
        ),
        attackers={5: sign_flip(4.0)},
        with_fifl=True,
        ledger=True,
        checkpoint_every=5,
    )


def _preset_sim_churn(seed: int) -> ServiceConfig:
    """Discrete-event federation: latency, drops, churn and retries."""
    return ServiceConfig(
        fed=FedExpConfig(
            dataset="blobs",
            num_workers=8,
            samples_per_worker=40,
            test_samples=160,
            rounds=30,
            eval_every=5,
            server_ranks=(0, 1),
            drop_prob=0.05,
            seed=seed,
            scenario=FaultScenario(
                name="cli-churn",
                latency=LatencyConfig(kind="uniform", a=0.01, b=0.05),
                round_timeout_s=30.0,
                max_retries=1,
                straggler_rate=0.1,
                churn=((6, 4, "leave"), (12, 4, "join"), (18, 6, "leave")),
                seed=seed,
            ),
        ),
        attackers={5: sign_flip(4.0)},
        with_fifl=True,
        ledger=True,
        checkpoint_every=5,
    )


def _preset_population(seed: int) -> ServiceConfig:
    """Cross-device mode: lazy 64-worker population, 16-worker cohorts."""
    return ServiceConfig(
        fed=FedExpConfig(
            dataset="blobs",
            num_workers=8,
            samples_per_worker=40,
            test_samples=160,
            rounds=30,
            eval_every=5,
            server_ranks=(0, 1),
            seed=seed,
            population_size=64,
            cohort_size=16,
            sampler="uniform",
            availability=0.9,
        ),
        attackers={5: sign_flip(4.0)},
        with_fifl=True,
        ledger=False,
        checkpoint_every=5,
    )


PRESETS = {
    "blobs-fifl": _preset_blobs_fifl,
    "sim-churn": _preset_sim_churn,
    "population": _preset_population,
}


def make_preset(
    name: str,
    *,
    seed: int = 0,
    rounds: int | None = None,
    checkpoint_every: int | None = None,
    history_tail: int | None = None,
) -> ServiceConfig:
    """One named preset config, with the common knobs applied."""
    if name not in PRESETS:
        raise ValueError(f"unknown preset {name!r} (have {sorted(PRESETS)})")
    cfg = PRESETS[name](seed)
    if rounds is not None:
        cfg.fed = cfg.fed.scaled(rounds=rounds)
    if checkpoint_every is not None:
        cfg.checkpoint_every = checkpoint_every
    if history_tail is not None:
        cfg.history_tail = history_tail
    return cfg


def _install_hub(args) -> None:
    """Swap in the observability stack the flags ask for."""
    if not (args.trace or args.deterministic_clock):
        return
    sinks: list = [MemorySink()]
    if args.trace:
        sinks.append(JsonlSink(args.trace, fsync_on_flush=True))
    clock = TickClock() if args.deterministic_clock else None
    set_telemetry(Telemetry(sinks=sinks, clock=clock))


def _summary(service: FederationService) -> dict:
    out = {
        "next_round": service.next_round,
        "final_accuracy": service.final_accuracy(),
        "history_digest": service.history_digest(),
        "reputation_digest": service.reputation_digest(),
        "snapshots": [p.name for p in list_snapshots(service.snapshot_dir)],
    }
    if service.ledger is not None:
        out["ledger_head"] = service.ledger.head_hash()
        out["ledger_blocks"] = len(service.ledger)
        out["ledger_intact"] = service.ledger.is_intact()
    return out


def _cmd_run(args) -> int:
    _install_hub(args)
    cfg = make_preset(
        args.preset,
        seed=args.seed,
        rounds=args.rounds,
        checkpoint_every=args.checkpoint_every,
        history_tail=args.history_tail,
    )
    service = FederationService(cfg, args.dir)
    service.run(
        until_round=args.until_round, kill_after_round=args.kill_after_round
    )
    print(json.dumps(_summary(service), indent=2, sort_keys=True))
    return 0


def _cmd_resume(args) -> int:
    _install_hub(args)
    snapshot = Path(args.snapshot) if args.snapshot else None
    service = FederationService.resume(args.dir, snapshot=snapshot)
    service.run(until_round=args.until_round)
    print(json.dumps(_summary(service), indent=2, sort_keys=True))
    return 0


def _cmd_status(args) -> int:
    snaps = list_snapshots(args.dir)
    latest = snaps[-1] if snaps else None
    status = {
        "dir": str(args.dir),
        "snapshots": [p.name for p in snaps],
        "latest": latest.name if latest else None,
    }
    if latest is not None:
        manifest = read_manifest(latest)
        status["round"] = manifest["round"]
        status["config"] = manifest.get("config_echo", {})
    if args.audit:
        # Lineage chain across process lifetimes: every retained
        # snapshot's audit anchors, oldest first — the digests
        # ``repro.audit verify --dir`` checks a resumed service against.
        status["audit"] = [
            {"snapshot": p.name, **read_manifest(p).get("audit", {})}
            for p in snaps
        ]
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if snaps else 1


def _cmd_inspect(args) -> int:
    snap = Path(args.snapshot) if args.snapshot else latest_snapshot(args.dir)
    if snap is None:
        print(f"no snapshots under {args.dir}", file=sys.stderr)
        return 1
    problems = verify_snapshot(snap)
    report = {"snapshot": str(snap), "ok": not problems, "problems": problems}
    if not problems:
        manifest = read_manifest(snap)
        report["round"] = manifest["round"]
        report["config"] = manifest.get("config_echo", {})
        report["components"] = {
            name: spec["nbytes"]
            for name, spec in sorted(manifest["components"].items())
        }
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if not problems else 1


def _add_hub_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        help="stream the telemetry trace to this JSONL file (fsync'd)",
    )
    parser.add_argument(
        "--deterministic-clock",
        action="store_true",
        help="TickClock spans: byte-identical traces across runs",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="operate a resumable FIFL federation service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="start a preset federation")
    p_run.add_argument("--preset", default="blobs-fifl", choices=sorted(PRESETS))
    p_run.add_argument("--dir", required=True, help="snapshot directory")
    p_run.add_argument("--rounds", type=int, default=None)
    p_run.add_argument("--checkpoint-every", type=int, default=None)
    p_run.add_argument("--history-tail", type=int, default=None)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--until-round", type=int, default=None)
    p_run.add_argument(
        "--kill-after-round",
        type=int,
        default=None,
        help="SIGKILL this process right after that round's checkpoint",
    )
    _add_hub_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_resume = sub.add_parser("resume", help="continue from a snapshot")
    p_resume.add_argument("--dir", required=True)
    p_resume.add_argument(
        "--snapshot", default=None, help="snapshot path (default: latest)"
    )
    p_resume.add_argument("--until-round", type=int, default=None)
    _add_hub_flags(p_resume)
    p_resume.set_defaults(fn=_cmd_resume)

    p_status = sub.add_parser("status", help="snapshot inventory")
    p_status.add_argument("--dir", required=True)
    p_status.add_argument(
        "--audit",
        action="store_true",
        help="include each snapshot's lineage digest anchors",
    )
    p_status.set_defaults(fn=_cmd_status)

    p_inspect = sub.add_parser("inspect", help="verify one snapshot")
    p_inspect.add_argument("--dir", required=True)
    p_inspect.add_argument("--snapshot", default=None)
    p_inspect.set_defaults(fn=_cmd_inspect)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
