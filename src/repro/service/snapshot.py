"""Durable snapshot format + the federation state capture/restore inventory.

A snapshot is a directory ``snapshot-<round:08d>/`` holding per-component
blobs plus a ``MANIFEST.json`` that records each blob's SHA-256 digest
and an integrity hash over the manifest itself:

* ``config.pkl`` — the :class:`~repro.service.ServiceConfig` the
  federation was built from (resume rebuilds the federation from this
  config, then overlays the captured state);
* ``model.npz`` — flat global model parameters and buffers;
* ``reputation.npz`` — the out-of-core reputation store's touched
  chunks (or its dense memmap contents), when allocated;
* ``state.pkl`` — every other piece of mutable state: the service's
  round cursor and history tail, per-worker RNG streams and attack
  state, population cache/churn cursors, mechanism reputations and
  cumulative rewards, ledger chain + signer identities, network RNG
  streams and cumulative counters, telemetry sequence/clock, monitor
  rule-engine state, and the sim kernel's virtual clock.

Writes are atomic: blobs land in a temp directory (each fsynced), the
manifest is written last, and the temp directory is renamed into place
— a crash mid-checkpoint leaves either the previous snapshot or a
``.tmp-*`` directory that readers ignore.

**Snapshots store state, not code.** Restore requires re-constructing
the same federation from the same config (deterministic builders), then
overlaying the captured state; closures and pools are never pickled.

The capture inventory is the other half of the byte-identity contract
(see DESIGN §16): every RNG stream, cumulative counter, and latch that
can influence a future round's outputs or a future trace event's bytes
must round-trip here. ``tests/service/`` holds the kill/resume
differentials that enforce it per configuration.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
from collections import defaultdict
from pathlib import Path

import numpy as np

from ..telemetry.core import TickClock
from ..telemetry.sinks import encode_event

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "MANIFEST_NAME",
    "SnapshotError",
    "write_snapshot",
    "read_manifest",
    "verify_snapshot",
    "load_snapshot",
    "list_snapshots",
    "latest_snapshot",
    "encode_snapshot_blobs",
    "capture_state",
    "restore_state",
    "capture_telemetry",
    "restore_telemetry",
    "record_digest",
    "history_digest",
    "reputation_digest",
]

#: bumped when the blob layout or the state inventory changes shape
SNAPSHOT_FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
_SNAP_PREFIX = "snapshot-"
_TMP_PREFIX = ".tmp-snapshot-"

#: worker attributes beyond the RNG stream that persist across rounds
#: (attack state: replay free-riders remember last params, colluders
#: their planted direction — both must survive a restart or the resumed
#: worker would re-draw/re-derive them differently)
_WORKER_EXTRA_ATTRS = ("_last_params", "_direction")


class SnapshotError(RuntimeError):
    """A snapshot is missing, incomplete, or fails integrity checks."""


# -- on-disk format -------------------------------------------------------------


def _integrity(manifest: dict) -> str:
    body = {k: v for k, v in manifest.items() if k != "integrity"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(
    root: Path | str,
    round_idx: int,
    blobs: dict[str, bytes],
    extra_manifest: dict | None = None,
) -> Path:
    """Atomically write ``blobs`` as ``snapshot-<round>`` under ``root``.

    Every blob is fsynced, the manifest (with per-blob digests and the
    manifest integrity hash) is written last, and the whole directory is
    renamed into place — readers never observe a partial snapshot.
    """
    if round_idx < 0:
        raise ValueError("round_idx must be non-negative")
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    final = root / f"{_SNAP_PREFIX}{round_idx:08d}"
    tmp = root / f"{_TMP_PREFIX}{round_idx:08d}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    components: dict[str, dict] = {}
    for name in sorted(blobs):
        payload = blobs[name]
        with open(tmp / name, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        components[name] = {
            "sha256": hashlib.sha256(payload).hexdigest(),
            "nbytes": len(payload),
        }
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "round": int(round_idx),
        "components": components,
    }
    if extra_manifest:
        manifest.update(extra_manifest)
    manifest["integrity"] = _integrity(manifest)
    with open(tmp / MANIFEST_NAME, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    if final.exists():
        # re-checkpointing the same round: replace the old directory
        shutil.rmtree(final)
    os.replace(tmp, final)
    _fsync_dir(root)
    return final


def read_manifest(snap_dir: Path | str) -> dict:
    """Load and integrity-check one snapshot's manifest."""
    snap_dir = Path(snap_dir)
    path = snap_dir / MANIFEST_NAME
    if not path.is_file():
        raise SnapshotError(f"{snap_dir} has no {MANIFEST_NAME}")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable manifest in {snap_dir}: {exc}") from exc
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"{snap_dir}: snapshot format v{version} "
            f"(this build reads v{SNAPSHOT_FORMAT_VERSION})"
        )
    if manifest.get("integrity") != _integrity(manifest):
        raise SnapshotError(f"{snap_dir}: manifest integrity hash mismatch")
    return manifest


def verify_snapshot(snap_dir: Path | str) -> list[str]:
    """Deep check: manifest integrity plus every component's digest.

    Returns a list of human-readable problems (empty = snapshot intact).
    """
    snap_dir = Path(snap_dir)
    try:
        manifest = read_manifest(snap_dir)
    except SnapshotError as exc:
        return [str(exc)]
    problems: list[str] = []
    for name, spec in sorted(manifest["components"].items()):
        path = snap_dir / name
        if not path.is_file():
            problems.append(f"{name}: missing component file")
            continue
        payload = path.read_bytes()
        if len(payload) != spec["nbytes"]:
            problems.append(
                f"{name}: size {len(payload)} != recorded {spec['nbytes']}"
            )
        if hashlib.sha256(payload).hexdigest() != spec["sha256"]:
            problems.append(f"{name}: sha256 digest mismatch")
    return problems


def list_snapshots(root: Path | str) -> list[Path]:
    """Valid snapshot directories under ``root``, oldest round first.

    Directories with unreadable or tampered manifests are skipped (a
    crash mid-rename can leave a ``.tmp-*`` directory; it never matches
    the snapshot prefix, so readers ignore it).
    """
    root = Path(root)
    if not root.is_dir():
        return []
    out: list[tuple[int, Path]] = []
    for entry in sorted(root.iterdir()):
        if not entry.is_dir() or not entry.name.startswith(_SNAP_PREFIX):
            continue
        try:
            manifest = read_manifest(entry)
        except SnapshotError:
            continue
        out.append((int(manifest["round"]), entry))
    out.sort()
    return [path for _, path in out]


def latest_snapshot(root: Path | str) -> Path | None:
    """The newest valid snapshot under ``root`` (None when empty)."""
    snaps = list_snapshots(root)
    return snaps[-1] if snaps else None


def load_snapshot(snap_dir: Path | str) -> tuple[object, dict]:
    """Read one snapshot back into ``(config, state)``.

    Components are digest-checked before unpickling; a tampered or
    truncated snapshot raises :class:`SnapshotError` instead of feeding
    corrupt bytes to the decoder.
    """
    snap_dir = Path(snap_dir)
    problems = verify_snapshot(snap_dir)
    if problems:
        raise SnapshotError(f"{snap_dir} failed verification: {problems}")
    config = pickle.loads((snap_dir / "config.pkl").read_bytes())
    state = pickle.loads((snap_dir / "state.pkl").read_bytes())
    with np.load(io.BytesIO((snap_dir / "model.npz").read_bytes())) as npz:
        state["model"] = {
            "params": npz["params"],
            "buffers": npz["buffers"],
        }
    rep_path = snap_dir / "reputation.npz"
    if rep_path.is_file():
        with np.load(io.BytesIO(rep_path.read_bytes())) as npz:
            if "dense" in npz.files:
                state["reputation_store"] = {"dense": npz["dense"], "chunks": None}
            else:
                chunks = {
                    int(name[len("chunk_"):]): npz[name] for name in npz.files
                }
                state["reputation_store"] = {"dense": None, "chunks": chunks}
    else:
        state["reputation_store"] = None
    return config, state


def encode_snapshot_blobs(config: object, state: dict) -> dict[str, bytes]:
    """Serialize ``(config, state)`` into the per-component blob map.

    The model and reputation arrays go into ``npz`` blobs (dense float
    payloads); everything structured rides in one pickle. The ``state``
    dict is consumed: array components are popped out of it.
    """
    state = dict(state)
    blobs: dict[str, bytes] = {"config.pkl": pickle.dumps(config, protocol=4)}

    model = state.pop("model")
    buf = io.BytesIO()
    np.savez(buf, params=model["params"], buffers=model["buffers"])
    blobs["model.npz"] = buf.getvalue()

    store = state.pop("reputation_store")
    if store is not None:
        buf = io.BytesIO()
        if store["dense"] is not None:
            np.savez(buf, dense=store["dense"])
        else:
            np.savez(
                buf,
                **{f"chunk_{cidx}": arr for cidx, arr in store["chunks"].items()},
            )
        blobs["reputation.npz"] = buf.getvalue()

    blobs["state.pkl"] = pickle.dumps(state, protocol=4)
    return blobs


# -- digests --------------------------------------------------------------------


def record_digest(record) -> str:
    """Canonical SHA-256 digest of one :class:`~repro.fl.RoundRecord`.

    Wall-clock-free by construction: only the deterministic round
    outputs participate, so digests compare across machines and across
    killed/resumed process boundaries.
    """
    payload = {
        "round_idx": record.round_idx,
        "test_loss": record.test_loss,
        "test_acc": record.test_acc,
        "accepted": record.accepted,
        "uncertain": sorted(int(w) for w in record.uncertain),
        "mechanism_records": record.mechanism_records,
        "grad_norm": record.grad_norm,
        "duration_s": record.duration_s,
        "sim": record.sim,
        "skipped": record.skipped,
    }
    return hashlib.sha256(encode_event(payload).encode()).hexdigest()


def chain_digest(rolling: str, digest: str) -> str:
    """Fold one record digest into the rolling history chain."""
    return hashlib.sha256((rolling + digest).encode()).hexdigest()


def history_digest(records, rolling: str = "") -> str:
    """Chained digest over round records (optionally seeded by a prior
    rolling digest from compacted-away records).

    The chain is a pure fold over records in round order, so the value
    is independent of *when* old records were compacted into the rolling
    prefix — a tail-trimmed service and an untrimmed one agree.
    """
    h = rolling
    for rec in records:
        h = chain_digest(h, record_digest(rec))
    return h


def reputation_digest(service) -> str:
    """SHA-256 over the mechanism's reputations + the out-of-core store."""
    h = hashlib.sha256()
    mech = service.mechanism
    if mech is not None:
        reps = mech.reputation.reputations()
        h.update(
            encode_event({str(w): reps[w] for w in sorted(reps)}).encode()
        )
    store = service.trainer.population._store
    if store is not None:
        for start, vals in store.iter_chunks():
            h.update(np.int64(start).tobytes())
            h.update(np.ascontiguousarray(vals, dtype=np.float64).tobytes())
    return h.hexdigest()


# -- per-component capture/restore ----------------------------------------------


def _worker_state(worker) -> dict:
    state = {"rng": worker.rng.bit_generator.state}
    for attr in _WORKER_EXTRA_ATTRS:
        value = getattr(worker, attr, None)
        if value is not None:
            state[attr] = np.array(value, copy=True)
    return state


def _restore_worker(worker, state: dict) -> None:
    worker.rng.bit_generator.state = state["rng"]
    for attr in _WORKER_EXTRA_ATTRS:
        if attr in state:
            setattr(worker, attr, np.array(state[attr], copy=True))


def _capture_population(pop) -> dict:
    return {
        "cached": [(wid, _worker_state(w)) for wid, w in pop._cache.items()],
        "evicted_rng": dict(pop._rng_states),
        "seen": sorted(pop._seen),
        "left": sorted(pop._left),
        "churn_applied_through": pop._churn_applied_through,
    }


def _restore_population(pop, state: dict) -> None:
    pop._seen = set(state["seen"])
    pop._left = set(state["left"])
    pop._churn_applied_through = state["churn_applied_through"]
    pop._rng_states = dict(state["evicted_rng"])
    # Workers the rebuilt federation already materialized (the pinned
    # from_workers roster, or a lazy population checked out whole by a
    # static-mode trainer) must keep their object identity — the trainer
    # holds references — so overlay their state in place. Workers only
    # the *saved* run had cached are materialized now, in saved insertion
    # order, reproducing the LRU ordering draw-for-draw.
    for wid, wst in state["cached"]:
        worker = pop._cache.get(wid)
        if worker is None:
            pop._rng_states[wid] = wst["rng"]
            worker = pop.materialize(wid)
        _restore_worker(worker, wst)


def _capture_store(store) -> dict | None:
    if store is None:
        return None
    if store._dense is not None:
        return {"dense": np.array(store._dense, copy=True), "chunks": None}
    return {
        "dense": None,
        "chunks": {cidx: np.array(c, copy=True) for cidx, c in store._chunks.items()},
    }


def _restore_store(pop, state: dict | None) -> None:
    if state is None:
        return
    store = pop.reputation_store  # allocates on first touch
    if state["dense"] is not None:
        if store._dense is not None:
            store._dense[:] = state["dense"]
        else:
            # dense snapshot into a chunked rebuild (config changed the
            # backing): spread the vector back through set_many
            store.set_many(
                np.arange(store.size, dtype=np.int64), state["dense"]
            )
        return
    store._chunks = {
        cidx: np.array(c, copy=True) for cidx, c in state["chunks"].items()
    }


def _capture_mechanism(mech) -> dict | None:
    if mech is None:
        return None
    return {
        "reputation": mech.reputation,
        "slm": mech.slm,
        "rounds_seen": mech._rounds_seen,
        "cumulative_rewards": dict(mech._cumulative_rewards),
        "prev_rep_ids": mech._prev_rep_ids,
        "prev_rep_vals": np.array(mech._prev_rep_vals, copy=True),
        "records": list(mech.records),
    }


def _restore_mechanism(mech, state: dict | None) -> None:
    if state is None or mech is None:
        return
    mech.reputation = state["reputation"]
    mech.slm = state["slm"]
    mech._rounds_seen = state["rounds_seen"]
    mech._cumulative_rewards = dict(state["cumulative_rewards"])
    mech._prev_rep_ids = state["prev_rep_ids"]
    mech._prev_rep_vals = np.array(state["prev_rep_vals"], copy=True)
    mech.records = list(state["records"])


def _capture_ledger(ledger) -> dict | None:
    if ledger is None:
        return None
    return {
        "blocks": list(ledger._blocks),
        "identities": dict(ledger._identities),
    }


def _restore_ledger(ledger, state: dict | None) -> None:
    if state is None or ledger is None:
        return
    ledger._blocks = list(state["blocks"])
    ledger._identities = dict(state["identities"])


def _capture_network(net) -> dict:
    if net.in_flight != 0:
        raise SnapshotError(
            f"cannot snapshot mid-round: {net.in_flight} messages in flight"
        )
    return {
        "rng": net._rng.bit_generator.state,
        "lat_rng": net._lat_rng.bit_generator.state,
        "blocked": sorted(net._blocked),
        "link_drop": dict(net._link_drop),
        "bytes_sent": dict(net.bytes_sent),
        "messages_sent": net.messages_sent,
        "messages_delivered": net.messages_delivered,
        "drops": list(net.drop_log.drops),
        "dead_tags": sorted(net._dead_tags),
    }


def _restore_network(net, state: dict) -> None:
    net._rng.bit_generator.state = state["rng"]
    net._lat_rng.bit_generator.state = state["lat_rng"]
    net._blocked = {tuple(link) for link in state["blocked"]}
    net._link_drop = dict(state["link_drop"])
    net.bytes_sent = defaultdict(int, state["bytes_sent"])
    net.messages_sent = state["messages_sent"]
    net.messages_delivered = state["messages_delivered"]
    net.drop_log.drops = [tuple(d) for d in state["drops"]]
    net._dead_tags = set(state["dead_tags"])


def _capture_sim(runner) -> dict | None:
    if runner is None:
        return None
    sim = runner.sim
    if not sim.idle():
        raise SnapshotError(
            "cannot snapshot mid-round: the sim event heap is not drained"
        )
    return {
        "now": sim._now,
        "seq": sim._seq,
        "events_run": sim.events_run,
        "rng": sim.rng.bit_generator.state,
        "offline": sorted(runner.offline),
    }


def _restore_sim(runner, state: dict | None) -> None:
    if state is None or runner is None:
        return
    sim = runner.sim
    sim._now = state["now"]
    sim._seq = state["seq"]
    sim.events_run = state["events_run"]
    sim.rng.bit_generator.state = state["rng"]
    runner.offline = set(state["offline"])


def _capture_monitor(monitor) -> dict | None:
    if monitor is None:
        return None
    return {
        "engine": monitor.engine,
        "alerts": list(monitor.alerts),
        "ring": list(monitor.recorder.ring),
    }


def _restore_monitor(monitor, state: dict | None) -> None:
    if state is None or monitor is None:
        return
    monitor.engine = state["engine"]
    # the emit hot path caches the bound method; rebind it to the
    # restored engine or alerts would keep flowing into the fresh one
    monitor._process = monitor.engine.process
    monitor.alerts = list(state["alerts"])
    monitor.recorder.ring.clear()
    monitor.recorder.ring.extend(state["ring"])


def capture_telemetry(tele) -> dict:
    """Sequence counter + deterministic clock state (post-flush).

    Aggregates (counters, gauges, histograms) are per-process
    observability, not trace content — they are intentionally *not*
    replicated across a restart; only state that shapes future event
    *bytes* (``seq``, the TickClock position) is.
    """
    clock = tele._clock
    return {
        "seq": tele._seq,
        "clock": (clock._t, clock._step) if isinstance(clock, TickClock) else None,
    }


def restore_telemetry(tele, state: dict) -> None:
    tele._seq = state["seq"]
    clock_state = state.get("clock")
    if clock_state is not None and isinstance(tele._clock, TickClock):
        tele._clock._t, tele._clock._step = clock_state


# -- whole-service capture ------------------------------------------------------


def capture_state(service) -> dict:
    """Snapshot every mutable component of a round-boundary federation.

    Must run at a round boundary (no messages in flight, sim heap
    drained) and *after* the hub's deferred events were flushed — the
    mechanism's previous-reputation telemetry state advances at flush
    time. Telemetry itself is captured separately (after the checkpoint
    event is emitted) via :func:`capture_telemetry`.
    """
    trainer = service.trainer
    model = trainer.model
    return {
        "service": {
            "next_round": service.next_round,
            "rounds": list(service.history.rounds),
            "rolling": service._rolling,
            "rounds_folded": service._rounds_folded,
        },
        "model": {
            "params": model.get_flat_params().copy(),
            "buffers": model.get_flat_buffers().copy(),
        },
        "trainer": {
            "server_ranks": list(trainer.server_ranks),
            "failed": sorted(trainer._failed),
        },
        "population": _capture_population(trainer.population),
        "reputation_store": _capture_store(trainer.population._store),
        "mechanism": _capture_mechanism(service.mechanism),
        "ledger": _capture_ledger(service.ledger),
        "network": _capture_network(trainer.network),
        "sim": _capture_sim(trainer._sim_runner),
        "monitor": _capture_monitor(service.monitor),
    }


def restore_state(service, state: dict) -> None:
    """Overlay a captured state dict onto a freshly built service."""
    trainer = service.trainer

    sv = state["service"]
    service.next_round = sv["next_round"]
    service.history.rounds = list(sv["rounds"])
    service._rolling = sv["rolling"]
    service._rounds_folded = sv["rounds_folded"]

    model = state["model"]
    trainer.model.set_flat_params(np.array(model["params"], copy=True))
    buffers = np.asarray(model["buffers"])
    if buffers.size:
        trainer.model.set_flat_buffers(np.array(buffers, copy=True))

    ts = state["trainer"]
    trainer.server_ranks = list(ts["server_ranks"])
    trainer._failed = set(ts["failed"])
    # force the fleet engine to rebuild against restored worker objects
    if trainer._fleet is not None:
        trainer._fleet.close()
    trainer._fleet = None
    trainer._fleet_key = None

    _restore_population(trainer.population, state["population"])
    _restore_store(trainer.population, state["reputation_store"])
    _restore_mechanism(service.mechanism, state["mechanism"])
    _restore_ledger(service.ledger, state["ledger"])
    _restore_network(trainer.network, state["network"])
    _restore_sim(trainer._sim_runner, state["sim"])
    _restore_monitor(service.monitor, state["monitor"])
