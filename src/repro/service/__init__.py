"""Long-lived federation service: durable snapshots, resume, replay.

The ROADMAP's production-scale story needs federations that outlive any
single process: a run killed at round k must restart from its latest
snapshot and continue **byte-identically** — same
:class:`~repro.fl.TrainingHistory`, same reputation store, same ledger
chain head, same seeded telemetry trace — as if it had never died. This
package supplies that operating mode in three layers:

* :mod:`repro.service.snapshot` — a versioned, atomic on-disk snapshot
  format (manifest + per-component blobs + integrity hashes,
  write-to-temp-then-rename) plus the capture/restore inventory over
  every piece of mutable federation state;
* :mod:`repro.service.service` — :class:`FederationService`, the
  round-loop driver with ``checkpoint_every`` / ``checkpoint_on_signal``
  policies and ``save()`` / ``restore()`` / ``resume()`` APIs, exposed
  as a CLI via ``python -m repro.service`` (``run`` / ``resume`` /
  ``status`` / ``inspect``);
* :mod:`repro.service.replay` — a traffic-replay harness that feeds
  seeded bursty join/leave/upload workloads through the sim kernel and
  reports sustained rounds/sec with monitor SLOs attached.

See DESIGN §16 for the snapshot format and the resume semantics, and
``benchmarks/bench_service.py`` for the kill/resume differential gate.
"""

from .service import FederationService, ServiceConfig
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    history_digest,
    latest_snapshot,
    list_snapshots,
    read_manifest,
    record_digest,
    verify_snapshot,
)
from .replay import ReplayConfig, generate_workload, run_replay

__all__ = [
    "FederationService",
    "ServiceConfig",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "history_digest",
    "latest_snapshot",
    "list_snapshots",
    "read_manifest",
    "record_digest",
    "verify_snapshot",
    "ReplayConfig",
    "generate_workload",
    "run_replay",
]
