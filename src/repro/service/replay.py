"""Traffic-replay harness: sustained-throughput runs under bursty churn.

The service's acceptance bar is operational, not statistical: run 10^4+
rounds of realistic traffic — bursty worker join/leave waves, lossy
lognormal-latency uploads, stragglers, bounded retries — through the
discrete-event kernel, checkpointing on schedule, and show that

* throughput is sustained (reported as rounds/sec over the whole run),
* snapshot overhead stays a small fraction of round wall time, and
* memory is bounded (the monitor's ``rss-growth`` watchdog stays clean
  while the history tail compacts old round records into the rolling
  digest chain).

:func:`generate_workload` derives the whole churn schedule from the
replay seed — the same config always replays the same traffic, so
throughput numbers are comparable across commits.

The harness runs ledger-free by default: a 10^4-block hash chain is
memory the throughput experiment does not need, and the ledger's
byte-identity across kill/resume is covered by the (shorter)
differential tests instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..experiments.common import FedExpConfig
from ..monitor import Monitor, MonitorConfig
from ..perf.resources import ResourceProbe
from ..sim import FaultScenario
from ..sim.latency import LatencyConfig
from ..telemetry import (
    MemorySink,
    Telemetry,
    get_telemetry,
    profile_delta,
    set_telemetry,
)
from .service import FederationService, ServiceConfig

__all__ = ["ReplayConfig", "generate_workload", "run_replay"]

_SALT_WORKLOAD = 0x3EBB


@dataclass(frozen=True)
class ReplayConfig:
    """One replayable traffic scenario (fully derived from ``seed``)."""

    rounds: int = 10_000
    num_workers: int = 16
    server_ranks: tuple[int, ...] = (0, 1)
    seed: int = 0
    # bursty churn: every ``burst_every`` rounds, ``burst_size`` random
    # non-server workers leave together and rejoin ``rejoin_after``
    # rounds later — the arrival/departure waves of real device fleets
    burst_every: int = 50
    burst_size: int = 4
    rejoin_after: int = 20
    # upload path: loss + heavy-tailed WAN latency + straggler process
    drop_prob: float = 0.02
    latency_median_s: float = 0.02
    latency_sigma: float = 0.5
    straggler_rate: float = 0.05
    straggler_slowdown: float = 4.0
    max_retries: int = 1
    round_timeout_s: float = 30.0
    # service policy under replay
    checkpoint_every: int = 500
    history_tail: int = 128
    keep_snapshots: int = 2
    # problem size (blobs: the fast mechanism-focused dataset)
    samples_per_worker: int = 32
    test_samples: int = 128
    # probe cadence (resource samples, fed to the rss-growth watchdog)
    sample_every: int = 20

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.burst_every <= 0 or self.rejoin_after <= 0:
            raise ValueError("burst_every and rejoin_after must be positive")
        if self.burst_size < 0:
            raise ValueError("burst_size must be non-negative")


def generate_workload(cfg: ReplayConfig) -> FaultScenario:
    """The seeded bursty join/leave + timing scenario for one replay.

    Churn only ever touches non-server workers: the replay measures
    sustained service under member churn, not server-loss recovery
    (that path has its own differential tests).
    """
    rng = np.random.default_rng((cfg.seed, _SALT_WORKLOAD))
    eligible = np.array(
        [w for w in range(cfg.num_workers) if w not in cfg.server_ranks]
    )
    churn: list[tuple[int, int, str]] = []
    for burst_round in range(cfg.burst_every, cfg.rounds, cfg.burst_every):
        size = min(cfg.burst_size, eligible.size)
        if size == 0:
            break
        leavers = rng.choice(eligible, size=size, replace=False)
        for wid in sorted(int(w) for w in leavers):
            churn.append((burst_round, wid, "leave"))
            rejoin = burst_round + cfg.rejoin_after
            if rejoin < cfg.rounds:
                churn.append((rejoin, wid, "join"))
    churn.sort()
    return FaultScenario(
        name=f"replay-s{cfg.seed}",
        latency=LatencyConfig(
            kind="lognormal", a=cfg.latency_median_s, b=cfg.latency_sigma
        ),
        round_timeout_s=cfg.round_timeout_s,
        max_retries=cfg.max_retries,
        straggler_rate=cfg.straggler_rate,
        straggler_slowdown=cfg.straggler_slowdown,
        churn=tuple(churn),
        seed=cfg.seed,
    )


def _service_config(cfg: ReplayConfig) -> ServiceConfig:
    fed = FedExpConfig(
        dataset="blobs",
        num_workers=cfg.num_workers,
        samples_per_worker=cfg.samples_per_worker,
        test_samples=cfg.test_samples,
        rounds=cfg.rounds,
        # sparse evaluation: the replay measures service throughput, not
        # a learning curve — evaluate ~20 times across the run
        eval_every=max(1, cfg.rounds // 20),
        server_ranks=tuple(cfg.server_ranks),
        drop_prob=cfg.drop_prob,
        seed=cfg.seed,
        scenario=generate_workload(cfg),
    )
    return ServiceConfig(
        fed=fed,
        with_fifl=True,
        ledger=False,
        checkpoint_every=cfg.checkpoint_every,
        keep_snapshots=cfg.keep_snapshots,
        history_tail=cfg.history_tail,
    )


def run_replay(cfg: ReplayConfig, snapshot_dir: Path | str) -> dict:
    """Replay one traffic scenario end to end; returns the SLO report.

    The harness owns its observability stack: a fresh hub with a
    *bounded* memory sink (so the replay's own telemetry cannot be the
    memory growth it is measuring), a monitor wired for the
    ``rss-growth`` watchdog, and a resource probe sampled at round
    boundaries. The process-wide hub is restored afterwards.
    """
    service_cfg = _service_config(cfg)
    monitor = Monitor(MonitorConfig())
    probe = ResourceProbe(sample_every=cfg.sample_every)
    prev_hub = get_telemetry()
    hub = Telemetry(sinks=[MemorySink(maxlen=4096)])
    set_telemetry(hub)
    try:
        service = FederationService(
            service_cfg, snapshot_dir, monitor=monitor, probe=probe
        )
        before = hub.snapshot()
        t0 = time.perf_counter()
        service.run()
        wall_s = time.perf_counter() - t0
        profile = profile_delta(before, hub.snapshot())
    finally:
        set_telemetry(prev_hub)
        probe.close()

    timings = profile.get("timings", {})
    round_s = timings.get("trainer.round", {}).get("seconds", 0.0)
    checkpoint_s = timings.get("service.checkpoint", {}).get("seconds", 0.0)
    overhead_pct = 100.0 * checkpoint_s / round_s if round_s > 0 else 0.0
    alerts = monitor.alerts_summary()
    resources = probe.summary()
    return {
        "rounds": cfg.rounds,
        "wall_s": wall_s,
        "sustained_rounds_per_sec": cfg.rounds / wall_s if wall_s > 0 else 0.0,
        "round_s_total": round_s,
        "checkpoint_s_total": checkpoint_s,
        "snapshot_overhead_pct": overhead_pct,
        "checkpoints": cfg.rounds // cfg.checkpoint_every,
        "history_rounds_in_memory": len(service.history.rounds),
        "history_digest": service.history_digest(),
        "final_accuracy": service.final_accuracy(),
        "alerts": alerts,
        "rss_growth_alerts": alerts["by_rule"].get("rss-growth", 0),
        "resources": resources,
    }
