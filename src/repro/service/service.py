"""FederationService: the long-lived, restart-tolerant round driver.

Where :meth:`FederatedTrainer.run` executes one in-process training run,
:class:`FederationService` operates a federation as a *service*: it owns
the round cursor, periodically checkpoints the complete federation state
to durable snapshots (``checkpoint_every`` rounds, plus on SIGTERM/SIGINT
when ``checkpoint_on_signal``), and can :meth:`resume` from the latest
snapshot after a crash or a hard kill.

Resume contract (enforced by ``tests/service/`` and
``benchmarks/bench_service.py --quick``): a run killed at a checkpoint
boundary and resumed produces **byte-identical** outputs — same
:class:`TrainingHistory` digest, same reputation state, same ledger
chain head, and (under a deterministic clock) the same seeded telemetry
trace — as the uninterrupted run.

Two design points make that possible:

* **Snapshots store state, not code.** A snapshot embeds the pickled
  :class:`ServiceConfig`; resume rebuilds the federation from it (every
  builder is deterministic in the config) and overlays the captured
  state. Closures, pools and fleet engines are never serialized.
* **The service drives ``run_round`` directly** — no ``trainer.run``
  wrapper span, a telemetry flush after *every* round, and the
  evaluation toggle keyed off the *configured* total rounds — so the
  event stream of round t is exactly the same whether the process has
  been alive since round 0 or resumed at the last checkpoint.

Memory over 10^4+ rounds is bounded by ``history_tail``: old round
records are folded into a rolling digest chain (so the end-of-run
:meth:`history_digest` is unchanged by compaction) and dropped.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core import make_mechanism
from ..experiments.common import AttackerSpec, FedExpConfig, build_population
from ..fl.trainer import FederatedTrainer, TrainingHistory
from ..ledger import Blockchain
from ..telemetry import get_telemetry
from .snapshot import (
    SnapshotError,
    capture_state,
    capture_telemetry,
    chain_digest,
    encode_snapshot_blobs,
    history_digest as _history_digest,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    record_digest,
    reputation_digest as _reputation_digest,
    restore_state,
    restore_telemetry,
    write_snapshot,
)

__all__ = ["ServiceConfig", "FederationService"]


@dataclass
class ServiceConfig:
    """Everything needed to (re)build and operate one federation.

    The config is pickled into every snapshot — resume unpickles it and
    rebuilds the same federation before overlaying state, so it must
    stay picklable (plain data, no closures).
    """

    fed: FedExpConfig = field(default_factory=FedExpConfig)
    #: worker id -> attacker spec (remaining workers honest)
    attackers: dict[int, AttackerSpec] = field(default_factory=dict)
    with_fifl: bool = True
    #: chain mechanism verdicts into a Blockchain ledger (fifl only)
    ledger: bool = True
    #: checkpoint every N completed rounds (the kill/resume granularity)
    checkpoint_every: int = 10
    #: checkpoint + stop gracefully on SIGTERM/SIGINT
    checkpoint_on_signal: bool = True
    #: durable snapshots retained (older ones pruned after each save)
    keep_snapshots: int = 3
    #: keep at most this many round records in memory; older ones fold
    #: into the rolling history digest (None = keep everything)
    history_tail: int | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")
        if self.history_tail is not None and self.history_tail < 1:
            raise ValueError("history_tail must be None or >= 1")


class FederationService:
    """Operates one federation across process lifetimes."""

    def __init__(
        self,
        config: ServiceConfig,
        snapshot_dir: Path | str,
        *,
        monitor=None,
        probe=None,
    ):
        self.config = config
        self.snapshot_dir = Path(snapshot_dir)
        self.monitor = monitor
        self.probe = probe
        self.next_round = 0
        self.history = TrainingHistory()
        # rolling digest over compacted-away round records (hex chain;
        # hashlib objects don't pickle, a hex string does)
        self._rolling = ""
        self._rounds_folded = 0
        self._signal_requested: int | None = None
        self._build()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        model, population, test = build_population(cfg.fed, cfg.attackers)
        self.ledger = Blockchain() if (cfg.with_fifl and cfg.ledger) else None
        self.mechanism = None
        if cfg.with_fifl:
            fed = cfg.fed
            self.mechanism = make_mechanism(
                "fifl",
                ledger=self.ledger,
                threshold=fed.detection_threshold,
                mode=fed.detection_mode,
                gamma=fed.gamma,
                contribution_baseline=fed.contribution_baseline,
                reference_worker=fed.reference_worker,
                contribution_filter=fed.contribution_filter,
                contribution_reference=fed.contribution_reference,
                engine=fed.engine,
                shard_size=fed.shard_size,
            )
        fed = cfg.fed
        self.trainer = FederatedTrainer(
            model,
            population=population,
            server_ranks=list(fed.server_ranks),
            test_data=test,
            mechanism=self.mechanism,
            server_lr=fed.server_lr,
            drop_prob=fed.drop_prob,
            seed=fed.seed,
            local_engine=fed.local_engine,
            scenario=fed.scenario,
            cohort_size=fed.cohort_size,
            sampler=fed.sampler,
            fleet_shard_size=fed.shard_size,
            backend=fed.backend,
            max_workers=fed.max_workers,
        )

    # -- history compaction / digests ------------------------------------------

    def _absorb(self, record) -> None:
        """Append one round record, folding old ones past the tail."""
        self.history.rounds.append(record)
        tail = self.config.history_tail
        if tail is None:
            return
        excess = len(self.history.rounds) - tail
        if excess > 0:
            for old in self.history.rounds[:excess]:
                self._rolling = chain_digest(self._rolling, record_digest(old))
            del self.history.rounds[:excess]
            self._rounds_folded += excess
        mech = self.mechanism
        if mech is not None and len(mech.records) > tail:
            del mech.records[: len(mech.records) - tail]

    def history_digest(self) -> str:
        """Digest over *all* rounds ever run (compacted or in memory)."""
        return _history_digest(self.history.rounds, rolling=self._rolling)

    def reputation_digest(self) -> str:
        """Digest over mechanism reputations + the out-of-core store."""
        return _reputation_digest(self)

    def final_accuracy(self) -> float | None:
        return self.history.final_accuracy()

    # -- checkpointing ---------------------------------------------------------

    def save(self) -> Path:
        """Checkpoint the complete federation state atomically.

        Ordering matters for the byte-identity contract: state is
        captured first (the hub was flushed at the round boundary, so
        the mechanism's deferred-telemetry state is settled), then the
        checkpoint's own span + event are emitted and flushed, and the
        telemetry cursor is captured *last* so a resumed process
        continues the sequence numbering exactly where a surviving one
        would be.
        """
        tele = get_telemetry()
        with tele.phase("service.checkpoint"):
            runner = self.trainer._sim_runner
            if runner is not None:
                # Drain the event heap: what remains after a round are
                # dead-tagged broadcast deliveries and suspended retry
                # actors (generators — unpicklable). Running them dry is
                # deterministic, happens at every checkpoint in every
                # run (killed or not), and leaves the kernel in the
                # idle state the snapshot inventory can capture.
                runner.sim.run()
            state = capture_state(self)
        tele.event(
            "service.checkpoint",
            {"round": self.next_round, "components": len(state)},
        )
        # Lineage anchor: the rolling digests at this checkpoint, both in
        # the trace (so offline audits see the digest chain advance) and
        # in the snapshot manifest (so ``repro.audit verify --dir`` can
        # tie a resumed process back to the exact state it inherited).
        # Pure functions of federation state, so a resumed process emits
        # the same anchors the uninterrupted one would (byte-identity).
        audit_block = self._audit_block()
        tele.event("service.audit", audit_block)
        tele.flush()
        state["telemetry"] = capture_telemetry(tele)
        blobs = encode_snapshot_blobs(self.config, state)
        path = write_snapshot(
            self.snapshot_dir,
            self.next_round,
            blobs,
            extra_manifest={
                "config_echo": self._config_echo(),
                # the manifest copy also records the compaction cursor —
                # policy-dependent, so it must never ride in the trace
                # event (history_tail would change trace bytes)
                "audit": {**audit_block,
                          "rounds_folded": self._rounds_folded},
            },
        )
        self._prune()
        return path

    def _audit_block(self) -> dict:
        """Digest anchors for decision-lineage continuity across resume."""
        block = {
            "round": self.next_round,
            "history_digest": self.history_digest(),
            "reputation_digest": self.reputation_digest(),
        }
        if self.ledger is not None:
            block["ledger_head"] = self.ledger.head_hash()
            block["ledger_blocks"] = len(self.ledger)
        return block

    def _config_echo(self) -> dict:
        """Human-readable manifest block for ``status`` / ``inspect``."""
        fed = self.config.fed
        return {
            "dataset": fed.dataset,
            "num_workers": fed.num_workers,
            "population_size": fed.population_size,
            "rounds": fed.rounds,
            "seed": fed.seed,
            "with_fifl": self.config.with_fifl,
            "ledger": self.config.ledger,
            "checkpoint_every": self.config.checkpoint_every,
            "rounds_folded": self._rounds_folded,
        }

    def _prune(self) -> None:
        snaps = list_snapshots(self.snapshot_dir)
        for stale in snaps[: -self.config.keep_snapshots]:
            import shutil

            shutil.rmtree(stale)

    def restore(self, state: dict) -> None:
        """Overlay a captured state dict (see :func:`capture_state`)."""
        restore_state(self, state)
        restore_telemetry(get_telemetry(), state["telemetry"])

    @classmethod
    def resume(
        cls,
        snapshot_dir: Path | str,
        *,
        snapshot: Path | str | None = None,
        monitor=None,
        probe=None,
    ) -> "FederationService":
        """Rebuild a service from its latest (or a named) snapshot."""
        snap = Path(snapshot) if snapshot is not None else latest_snapshot(snapshot_dir)
        if snap is None:
            raise SnapshotError(f"no snapshots under {snapshot_dir}")
        config, state = load_snapshot(snap)
        service = cls(config, snapshot_dir, monitor=monitor, probe=probe)
        service.restore(state)
        return service

    # -- the round loop --------------------------------------------------------

    def _handle_signal(self, signum, frame) -> None:
        self._signal_requested = signum

    def _hard_kill(self) -> None:
        """Die like a machine would: no cleanup, no atexit, no flush."""
        os.kill(os.getpid(), signal.SIGKILL)

    def run(
        self,
        *,
        until_round: int | None = None,
        kill_after_round: int | None = None,
    ) -> TrainingHistory:
        """Advance the federation to ``until_round`` (default: configured
        total), checkpointing per policy.

        ``kill_after_round=k`` SIGKILLs the process right after round k's
        checkpoint — the crash-injection hook the kill/resume
        differentials drive. It must land on a checkpoint boundary, or
        the post-kill state would be unrecoverable by construction.
        """
        cfg = self.config
        total = cfg.fed.rounds
        until = total if until_round is None else until_round
        if until > total:
            raise ValueError(f"until_round {until} exceeds configured {total}")
        if kill_after_round is not None:
            if (kill_after_round + 1) % cfg.checkpoint_every != 0:
                raise ValueError(
                    f"kill_after_round {kill_after_round} is not a "
                    f"checkpoint boundary (checkpoint_every="
                    f"{cfg.checkpoint_every})"
                )
            if not self.next_round <= kill_after_round < until:
                raise ValueError(
                    f"kill_after_round {kill_after_round} outside "
                    f"[{self.next_round}, {until})"
                )
        tele = get_telemetry()
        eval_every = cfg.fed.eval_every
        trainer = self.trainer
        saved_test = trainer.test_data
        monitor = self.monitor
        if monitor is not None:
            tele.flush()
            monitor.install(tele)
        prev_handlers: list[tuple[int, object]] = []
        if cfg.checkpoint_on_signal:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    prev_handlers.append(
                        (sig, signal.signal(sig, self._handle_signal))
                    )
                except ValueError:
                    pass  # not the main thread; run without signal hooks
        try:
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                for t in range(self.next_round, until):
                    # Evaluation cadence keyed off the *configured* total
                    # (never the stop bound), so a partial run's rounds
                    # match the uninterrupted run's bytes exactly.
                    trainer.test_data = (
                        saved_test
                        if (t % eval_every == 0 or t == total - 1)
                        else None
                    )
                    record = trainer.run_round(t)
                    self.next_round = t + 1
                    self._absorb(record)
                    if trainer._sim_runner is None:
                        # Direct mode never receives the protocol-fidelity
                        # broadcast; close its tag or queued slices
                        # accumulate without bound over 10^4 rounds.
                        trainer.network.cancel_tag(f"global:{t}")
                    tele.flush()
                    if self.probe is not None:
                        sample = self.probe.sample(t)
                        if sample is not None and monitor is not None:
                            monitor.observe_resource(sample)
                    if (
                        (t + 1) % cfg.checkpoint_every == 0
                        or self._signal_requested is not None
                    ):
                        self.save()
                        # Drop the warm fleet engine: a resumed process
                        # necessarily rebuilds it (pools and stacked
                        # replicas are not snapshot state), so every run
                        # must rebuild at checkpoints too — otherwise the
                        # engine's build telemetry appears in a resumed
                        # trace but not the uninterrupted one.
                        if trainer._fleet is not None:
                            trainer._fleet.close()
                            trainer._fleet = None
                            trainer._fleet_key = None
                        if self._signal_requested is not None:
                            break
                    if kill_after_round is not None and t == kill_after_round:
                        self._hard_kill()
        except BaseException as exc:
            if monitor is not None:
                from ..monitor.alerts import MonitorError

                try:
                    tele.flush()
                except MonitorError:
                    pass
                from ..parallel.backend import backend_summary

                monitor.dump_postmortem(
                    f"exception: {type(exc).__name__}",
                    context={
                        "backend": backend_summary(trainer.backend),
                        "round": self.next_round,
                    },
                )
            raise
        finally:
            trainer.test_data = saved_test
            for sig, handler in prev_handlers:
                signal.signal(sig, handler)
            if monitor is not None:
                monitor.uninstall()
        return self.history
