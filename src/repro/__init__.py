"""repro — reproduction of "FIFL: A Fair Incentive Mechanism for
Federated Learning" (Gao et al., ICPP 2021).

Subpackages
-----------
``repro.nn``
    Pure-NumPy neural networks (the PyTorch substitution).
``repro.datasets``
    Synthetic datasets, partitioners, label poisoning.
``repro.comm``
    In-process lossy message passing and FL topologies.
``repro.fl``
    Federated substrate: workers, attackers, trainer.
``repro.core``
    The FIFL mechanism, its four modules, baselines, robust-aggregation
    comparisons, and server selection.
``repro.ledger``
    Blockchain audit substrate.
``repro.market``
    Worker-market simulation for the incentive comparison.
``repro.metrics``
    Detection and reporting metrics.
``repro.profiling``
    Always-on per-phase timers/counters for the round engine.
``repro.experiments``
    One driver per paper figure plus a CLI runner.

Quick start: see ``examples/quickstart.py`` or README.md.
"""

from . import comm, core, datasets, fl, ledger, market, metrics, nn, profiling

__version__ = "1.0.0"

__all__ = [
    "nn",
    "datasets",
    "comm",
    "fl",
    "core",
    "ledger",
    "market",
    "metrics",
    "profiling",
    "__version__",
]
