"""Blockchain audit substrate: signed hash chain + reputation audit."""

from .audit import AuditFinding, AuditReport, audit_reputation
from .blockchain import (
    Block,
    Blockchain,
    SigningIdentity,
    canonicalize,
    payload_digest,
)

__all__ = [
    "Block",
    "Blockchain",
    "SigningIdentity",
    "canonicalize",
    "payload_digest",
    "AuditFinding",
    "AuditReport",
    "audit_reputation",
]
