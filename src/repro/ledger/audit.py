"""The paper's audit protocol (S4.5) over the blockchain ledger.

When worker ``i`` suspects its reputation was manipulated, the task
publisher replays the detection outcomes recorded on the chain through an
independent reputation calculator and compares each round's recomputed
value with the value the server committed. A mismatch pinpoints the round
and — via the block signature — the server that signed the bad record,
which is then removed from the cluster.

Records are the dictionaries :class:`repro.core.FIFLMechanism` commits:
``{"round": t, "accepted": {worker: bool}, "reputations": {worker: float}, ...}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.reputation import DecayReputation
from .blockchain import Blockchain

__all__ = ["AuditFinding", "AuditReport", "audit_reputation"]


@dataclass(frozen=True)
class AuditFinding:
    """One inconsistent ledger entry."""

    block_index: int
    round_idx: int
    signer: str
    recorded: float
    recomputed: float


@dataclass
class AuditReport:
    """Outcome of replaying one worker's reputation from the chain."""

    worker: int
    findings: list[AuditFinding] = field(default_factory=list)
    chain_intact: bool = True
    rounds_checked: int = 0

    @property
    def clean(self) -> bool:
        """True iff the chain verifies and every round matches."""
        return self.chain_intact and not self.findings

    def implicated_signers(self) -> set[str]:
        """Servers whose signed records disagree with the recomputation."""
        return {f.signer for f in self.findings}


def audit_reputation(
    chain: Blockchain,
    worker: int,
    gamma: float,
    initial: float = 0.0,
    tolerance: float = 1e-9,
) -> AuditReport:
    """Recompute worker ``i``'s reputation trajectory from the ledger.

    Parameters mirror the mechanism's reputation config; the auditor must
    use the same ``gamma`` and initial value the federation declared.
    """
    report = AuditReport(worker=worker)
    report.chain_intact = chain.is_intact()
    replay = DecayReputation(gamma=gamma, initial=initial)
    worker_key = str(worker)  # canonical payloads have string keys
    for blk in chain.blocks:
        payload = blk.payload
        if not isinstance(payload, dict) or "reputations" not in payload:
            continue  # not a FIFL round record
        accepted = payload.get("accepted", {})
        if worker_key not in payload["reputations"]:
            continue
        outcome = accepted.get(worker_key)  # None = uncertain event
        recomputed = replay.update(worker, outcome)
        recorded = float(payload["reputations"][worker_key])
        report.rounds_checked += 1
        if abs(recorded - recomputed) > tolerance:
            report.findings.append(
                AuditFinding(
                    block_index=blk.index,
                    round_idx=int(payload.get("round", -1)),
                    signer=blk.signer,
                    recorded=recorded,
                    recomputed=recomputed,
                )
            )
    from ..telemetry.core import get_telemetry

    get_telemetry().event(
        "ledger.audit",
        {
            "worker": worker,
            "rounds_checked": report.rounds_checked,
            "chain_intact": report.chain_intact,
            "clean": report.clean,
            "findings": [
                {
                    "block_index": f.block_index,
                    "round": f.round_idx,
                    "signer": f.signer,
                    "recorded": f.recorded,
                    "recomputed": f.recomputed,
                }
                for f in report.findings
            ],
        },
    )
    return report
