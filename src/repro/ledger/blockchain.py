"""Hash-chained, signed audit ledger (the paper's blockchain, S4.5).

The paper stores every round's intermediate assessment results plus the
executing server's signature in a blockchain "to prevent fraud and
denial". The properties actually used are:

* append-only history whose *integrity* is checkable (hash chaining);
* *attribution* of every record to a signer (keyed signatures);
* the ability to recompute a suspected value from the recorded history
  and trace a mismatch to the signing server (the audit protocol).

An in-process SHA-256 hash chain with HMAC signatures provides exactly
those guarantees; consensus is out of scope here just as it is in the
paper (the task publisher is the trusted auditor).

Payloads are canonicalized (sorted-key JSON with NumPy scalars/arrays
converted) before hashing, so semantically equal records hash equally.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["canonicalize", "payload_digest", "SigningIdentity", "Block", "Blockchain"]


def canonicalize(obj: Any) -> Any:
    """Convert payloads to plain JSON types (dict keys become strings)."""
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [canonicalize(v) for v in obj.tolist()]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"payload value of type {type(obj).__name__} is not auditable")


def payload_digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    blob = json.dumps(canonicalize(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class SigningIdentity:
    """A named signer with a secret key (HMAC-SHA256 signatures)."""

    def __init__(self, name: str, secret: bytes):
        if not name:
            raise ValueError("signer name must be non-empty")
        if len(secret) < 8:
            raise ValueError("secret must be at least 8 bytes")
        self.name = name
        self._secret = bytes(secret)

    def sign(self, message: str) -> str:
        """HMAC signature (hex) over an arbitrary message string."""
        return hmac.new(self._secret, message.encode(), hashlib.sha256).hexdigest()

    def verify(self, message: str, signature: str) -> bool:
        """Constant-time signature check."""
        return hmac.compare_digest(self.sign(message), signature)


@dataclass(frozen=True)
class Block:
    """One immutable ledger entry."""

    index: int
    payload: Any  # canonical JSON types
    signer: str
    signature: str
    prev_hash: str
    hash: str

    @staticmethod
    def compute_hash(index: int, payload: Any, signer: str, signature: str, prev_hash: str) -> str:
        body = json.dumps(
            {
                "index": index,
                "payload": canonicalize(payload),
                "signer": signer,
                "signature": signature,
                "prev_hash": prev_hash,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode()).hexdigest()


GENESIS_HASH = hashlib.sha256(b"FIFL-genesis").hexdigest()


class Blockchain:
    """Append-only signed hash chain with tamper detection.

    Signers must be registered (name -> :class:`SigningIdentity`) before
    they may append; verification re-derives every hash and signature.
    For convenience, ``append(payload, signer="name")`` auto-registers an
    identity with a derived key when the name is unknown — fine for
    simulations where key distribution is not under test.
    """

    def __init__(self) -> None:
        self._blocks: list[Block] = []
        self._identities: dict[str, SigningIdentity] = {}

    # -- identities -------------------------------------------------------

    def register(self, identity: SigningIdentity) -> None:
        if identity.name in self._identities:
            raise ValueError(f"signer {identity.name!r} already registered")
        self._identities[identity.name] = identity

    def identity(self, name: str) -> SigningIdentity:
        if name not in self._identities:
            # deterministic per-name key for simulation convenience
            secret = hashlib.sha256(f"fifl-sim-key:{name}".encode()).digest()
            self._identities[name] = SigningIdentity(name, secret)
        return self._identities[name]

    # -- chain operations ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __getitem__(self, idx: int) -> Block:
        return self._blocks[idx]

    @property
    def blocks(self) -> list[Block]:
        return list(self._blocks)

    def head_hash(self) -> str:
        return self._blocks[-1].hash if self._blocks else GENESIS_HASH

    def append(self, payload: Any, signer: str) -> Block:
        """Sign ``payload`` as ``signer`` and chain it onto the head.

        Each commit also lands in the telemetry stream as a
        ``ledger.commit`` event (hashes + digest, never the payload), so
        chain growth is audit-visible in traces and the monitor can
        check linkage online. Additive to the v1 schema.
        """
        identity = self.identity(signer)
        canonical = canonicalize(payload)
        index = len(self._blocks)
        prev_hash = self.head_hash()
        digest = payload_digest(canonical)
        signature = identity.sign(f"{index}:{prev_hash}:{digest}")
        block_hash = Block.compute_hash(index, canonical, signer, signature, prev_hash)
        block = Block(index, canonical, signer, signature, prev_hash, block_hash)
        self._blocks.append(block)
        from ..telemetry.core import get_telemetry

        get_telemetry().event(
            "ledger.commit",
            {
                "index": index,
                "signer": signer,
                "prev_hash": prev_hash,
                "hash": block_hash,
                "payload_digest": digest,
                "round": canonical.get("round") if isinstance(canonical, dict) else None,
            },
        )
        return block

    def verify(self) -> list[int]:
        """Return indices of invalid blocks (empty list = chain intact).

        A block is invalid if its hash does not match its contents, its
        prev_hash does not match its predecessor, or its signature fails
        against the registered signer key.
        """
        bad: list[int] = []
        prev_hash = GENESIS_HASH
        for i, blk in enumerate(self._blocks):
            expected = Block.compute_hash(
                blk.index, blk.payload, blk.signer, blk.signature, blk.prev_hash
            )
            ok = (
                blk.index == i
                and blk.prev_hash == prev_hash
                and blk.hash == expected
                and self.identity(blk.signer).verify(
                    f"{blk.index}:{blk.prev_hash}:{payload_digest(blk.payload)}",
                    blk.signature,
                )
            )
            if not ok:
                bad.append(i)
            prev_hash = blk.hash
        return bad

    def is_intact(self) -> bool:
        """True iff every block verifies."""
        return not self.verify()

    def tamper(self, index: int, payload: Any) -> None:
        """Overwrite a block's payload *without* re-signing (test hook).

        Exists so tests and the audit demo can simulate a malicious server
        rewriting history; verification will flag the block.
        """
        if not 0 <= index < len(self._blocks):
            raise IndexError(f"no block at index {index}")
        old = self._blocks[index]
        self._blocks[index] = Block(
            old.index, canonicalize(payload), old.signer, old.signature,
            old.prev_hash, old.hash,
        )
