"""Event-scheduled round execution for the federated trainer.

:class:`SimRoundRunner` owns the trainer's :class:`~repro.sim.Simulator`
and drives one communication round on the virtual clock:

1. **round start** — apply the scenario's churn schedule (join/leave,
   which is also worker/server crash + restart), install this round's
   link partitions, black out offline nodes' links, and draw the
   round's stragglers from the simulator's seeded stream;
2. **upload** — each online worker becomes a process-style actor that
   fires at ``t0 + compute_time`` and sends its gradient slices; a
   dropped send is retried up to ``max_retries`` times with exponential
   backoff; each successful send arrives after its sampled latency;
3. **collection** — the server cluster drains arrivals in event order
   and closes the round when every slice has resolved (delivered or
   abandoned) or at the deadline ``t0 + round_timeout_s``, whichever
   comes first. Late or missing slices make that worker's round an
   *uncertain event* — exactly the reputation path instantaneous drops
   already take (S4.2), so SLM reputation and rewards respond to
   realistic failures with no mechanism changes.

The zero-fault, zero-latency scenario runs the same machinery (events,
virtual clock, collection loop) but makes exactly the same RNG draws in
exactly the same order as the direct loop — differential-tested to
reproduce ``FederatedTrainer`` histories bit-for-bit, and benchmarked
to stay within 5% of the direct loop (``benchmarks/bench_sim.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from .faults import FaultScenario
from .kernel import Simulator
from .latency import make_latency

if TYPE_CHECKING:  # pragma: no cover
    from ..fl.trainer import FederatedTrainer

__all__ = ["SimRoundRunner"]

#: bucket edges (virtual seconds) for the sim.latency histogram
_LATENCY_EDGES = (
    0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
)


@dataclass
class _RoundState:
    """Mutable per-round collection state shared with upload actors."""

    tag: str
    closed: bool = False
    retries: int = 0
    #: slices that will never arrive (drop budget exhausted)
    abandoned: set[tuple[int, int]] = field(default_factory=set)


@dataclass(frozen=True)
class _RoundPlan:
    """What :meth:`SimRoundRunner.begin_round` decided for one round."""

    offline: frozenset[int]
    stragglers: tuple[int, ...]
    compute_s: dict[int, float]


class SimRoundRunner:
    """Drives fault-scenario rounds for one :class:`FederatedTrainer`."""

    def __init__(self, trainer: "FederatedTrainer", scenario: FaultScenario):
        self.trainer = trainer
        self.scenario = scenario
        # The network schedules its deliveries on the same simulator the
        # runner drives — one event heap for the whole round. Its seeded
        # rng feeds the fault processes (stragglers, compute-time models),
        # independent of the network's drop and latency streams, so
        # adding faults never reshuffles other randomness.
        sim = getattr(trainer.network, "sim", None)
        self.sim: Simulator = sim if sim is not None else Simulator(
            seed=(trainer_seed_of(trainer), scenario.seed, 0x51D)
        )
        self.offline: set[int] = set()
        # A null scenario with no per-worker compute models yields the
        # same (empty) plan every round — skip the per-round planning.
        self._static_plan: _RoundPlan | None = None
        if scenario.is_null and all(
            getattr(w, "compute_time", None) is None for w in trainer.workers
        ):
            self._static_plan = _RoundPlan(
                offline=frozenset(), stragglers=(), compute_s={}
            )
        trainer.profiler.register_histogram("sim.latency", _LATENCY_EDGES)

    # -- round boundary --------------------------------------------------------

    def begin_round(self, round_idx: int) -> _RoundPlan:
        """Apply churn/partitions and draw this round's timing plan."""
        if self._static_plan is not None:
            return self._static_plan
        scenario = self.scenario
        trainer = self.trainer
        for wid, action in scenario.churn_at(round_idx):
            if not 0 <= wid < trainer.num_workers:
                raise ValueError(f"churn rank {wid} outside the federation")
            if action == "leave":
                self.offline.add(wid)
            else:
                self.offline.discard(wid)
        blocked = scenario.partition_links(round_idx, trainer.num_workers)
        for off in self.offline:
            for other in range(trainer.num_workers):
                blocked.add((off, other))
                blocked.add((other, off))
        trainer.network.set_blocked_links(blocked)

        rng = self.sim.rng
        rate = scenario.straggler_rate
        stragglers: list[int] = []
        compute_s: dict[int, float] = {}
        for wid in range(trainer.num_workers):
            if wid in trainer._failed or wid in self.offline:
                continue
            worker = trainer.workers[wid]
            base = worker.local_compute_seconds(round_idx, rng)
            if base is None:
                base = scenario.base_compute_s
            if rate > 0.0 and rng.random() < rate:
                base *= scenario.straggler_slowdown
                stragglers.append(wid)
            compute_s[wid] = float(base)
        return _RoundPlan(
            offline=frozenset(self.offline),
            stragglers=tuple(stragglers),
            compute_s=compute_s,
        )

    # -- upload + collection ---------------------------------------------------

    def _upload_proc(
        self,
        wid: int,
        parts: list[np.ndarray],
        servers: list[int],
        state: _RoundState,
    ):
        """Actor: send every slice, retrying dropped sends with backoff."""
        net = self.trainer.network
        scenario = self.scenario
        pending = list(enumerate(servers))
        attempt = 0
        while True:
            failed = [
                (j, srv)
                for j, srv in pending
                if not net.send(wid, srv, state.tag, (j, parts[j]))
            ]
            if not failed:
                return
            if attempt >= scenario.max_retries:
                for _, srv in failed:
                    state.abandoned.add((wid, srv))
                return
            yield scenario.retry_delay(attempt)
            attempt += 1
            if state.closed:
                return  # the round deadline passed while backing off
            state.retries += len(failed)
            pending = failed

    def collect(
        self,
        sends: Iterable[tuple[int, list[np.ndarray]]],
        round_idx: int,
        plan: _RoundPlan,
    ) -> tuple[dict[int, dict[int, np.ndarray]], set[int], dict]:
        """Run the round's upload/collection on the virtual clock.

        ``sends`` is ``(worker_id, slice parts)`` in the same order the
        direct path would send — with zero faults the event schedule
        replays exactly that order, draw for draw.
        """
        sim = self.sim
        trainer = self.trainer
        scenario = self.scenario
        servers = list(trainer.server_ranks)
        t0 = sim.now
        state = _RoundState(tag=f"slice:{round_idx}")
        deadline = (
            t0 + scenario.round_timeout_s
            if scenario.round_timeout_s is not None
            else None
        )

        # Degenerate rounds — no latency, no retries, no compute delay,
        # nothing already in flight — need no events at all: every send
        # resolves at t0, in exactly the order the actors would fire.
        # Replaying them synchronously keeps the zero-fault path within
        # the direct loop's budget (see benchmarks/bench_sim.py).
        if (
            scenario.max_retries == 0
            and trainer.network.latency is None
            and sim.idle()
            and all(v == 0.0 for v in plan.compute_s.values())
        ):
            return self._collect_fast(sends, round_idx, plan, state)

        worker_ids: list[int] = []
        for wid, parts in sends:
            worker_ids.append(wid)
            sim.spawn(
                self._upload_proc(wid, parts, servers, state),
                delay=plan.compute_s.get(wid, 0.0),
            )

        outstanding = {(wid, srv) for wid in worker_ids for srv in servers}
        got: dict[int, dict[int, np.ndarray]] = {wid: {} for wid in worker_ids}
        resolve_at: dict[int, float] = {}
        while outstanding:
            outstanding -= state.abandoned
            if not outstanding:
                break
            t_next = sim.peek()
            if t_next is None:
                break  # nothing in flight: the rest will never arrive
            if deadline is not None and t_next > deadline:
                break  # deadline cut: whatever is left is late
            sim.run_batch()
            for wid, srv in sorted(outstanding):
                msg = trainer.network.recv(srv, wid, state.tag)
                if msg is not None:
                    j, part = msg.payload
                    got[wid][srv] = part
                    resolve_at[wid] = sim.now
                    outstanding.discard((wid, srv))

        outstanding -= state.abandoned
        late_pairs = sorted(outstanding)
        state.closed = True
        trainer.network.cancel_tag(state.tag)
        if deadline is not None and late_pairs:
            sim.advance_to(deadline)
        duration = sim.now - t0

        delivered: dict[int, dict[int, np.ndarray]] = {}
        uncertain: set[int] = set()
        for wid in worker_ids:
            if len(got[wid]) == len(servers):
                delivered[wid] = got[wid]
            else:
                uncertain.add(wid)

        late_workers = sorted({wid for wid, _ in late_pairs})
        sim_info = {
            "t_start_s": t0,
            "duration_s": duration,
            "stragglers": list(plan.stragglers),
            "offline": sorted(plan.offline),
            "retries": state.retries,
            "late": late_workers,
            "worker_time_s": {
                wid: resolve_at[wid] - t0 for wid in sorted(resolve_at)
            },
        }
        self._emit_round_telemetry(round_idx, sim_info, uncertain)
        return delivered, uncertain, sim_info

    def _collect_fast(
        self,
        sends: Iterable[tuple[int, list[np.ndarray]]],
        round_idx: int,
        plan: _RoundPlan,
        state: _RoundState,
    ) -> tuple[dict[int, dict[int, np.ndarray]], set[int], dict]:
        """Synchronous replay of a zero-delay round.

        Every slice is sent and received at ``t0`` in the same order the
        upload actors would fire, making the same drop draws — identical
        results to :meth:`collect`, minus the event heap. Per-round sim
        telemetry is skipped too: a degenerate round has nothing to
        report (zero duration, no faults), and the ``comm.*`` counters
        still account every byte and drop.
        """
        trainer = self.trainer
        net = trainer.network
        servers = list(trainer.server_ranks)
        t0 = self.sim.now
        delivered: dict[int, dict[int, np.ndarray]] = {}
        uncertain: set[int] = set()
        resolved: list[int] = []
        for wid, parts in sends:
            got: dict[int, np.ndarray] = {}
            for j, srv in enumerate(servers):
                if net.send(wid, srv, state.tag, (j, parts[j])):
                    msg = net.recv(srv, wid, state.tag)
                    got[srv] = msg.payload[1]
            if got:
                resolved.append(wid)
            if len(got) == len(servers):
                delivered[wid] = got
            else:
                uncertain.add(wid)
        state.closed = True
        net.cancel_tag(state.tag)
        sim_info = {
            "t_start_s": t0,
            "duration_s": 0.0,
            "stragglers": list(plan.stragglers),
            "offline": sorted(plan.offline),
            "retries": 0,
            "late": [],
            "worker_time_s": {wid: 0.0 for wid in sorted(resolved)},
        }
        return delivered, uncertain, sim_info

    def end_round(self, round_idx: int) -> None:
        """Close the downlink tag so late broadcast deliveries are dropped."""
        self.trainer.network.cancel_tag(f"global:{round_idx}")

    # -- telemetry -------------------------------------------------------------

    def _emit_round_telemetry(
        self, round_idx: int, sim_info: dict, uncertain: set[int]
    ) -> None:
        tele = self.trainer.profiler
        if not tele.enabled:
            return
        if sim_info["stragglers"]:
            tele.count("sim.stragglers", len(sim_info["stragglers"]))
        if sim_info["retries"]:
            tele.count("sim.retries", sim_info["retries"])
        if sim_info["late"]:
            tele.count("sim.late_workers", len(sim_info["late"]))
        if sim_info["offline"]:
            tele.count("sim.offline_worker_rounds", len(sim_info["offline"]))
        tele.gauge("sim.round_duration_s", sim_info["duration_s"])
        # Cumulative comm counters ride along so the monitor's
        # byte-accounting invariant can audit the network per round:
        # delivered + dropped never exceeds attempts, and every counter
        # is monotone across the trace.
        net = self.trainer.network
        tele.event(
            "sim.round",
            {
                "round": round_idx,
                "duration_s": sim_info["duration_s"],
                "stragglers": sim_info["stragglers"],
                "offline": sim_info["offline"],
                "retries": sim_info["retries"],
                "late": sim_info["late"],
                "uncertain": sorted(int(w) for w in uncertain),
                "comm": {
                    "messages_sent": net.messages_sent,
                    "delivered": net.messages_delivered,
                    "dropped": len(net.drop_log.drops),
                    "bytes_sent": net.total_bytes(),
                },
            },
        )


def trainer_seed_of(trainer) -> int:
    """The trainer's integer seed (kept separate for testability)."""
    return int(getattr(trainer, "seed", 0))


def build_network_kwargs(scenario: FaultScenario, sim: Simulator) -> dict:
    """Network constructor extras for a scenario (latency + simulator)."""
    return {"latency": make_latency(scenario.latency), "sim": sim}
