"""Fault processes: stragglers, churn, crash/restart, link partitions.

:class:`FaultScenario` is the declarative config block experiments embed
(``FedExpConfig.scenario``): it bundles the network latency spec, the
server-side round deadline and bounded-retry policy, the straggler
process, a worker churn schedule (which also models worker/server
crash + restart), and transient link partitions. Passing a scenario to
:class:`~repro.fl.FederatedTrainer` switches the round's upload phase
onto the discrete-event kernel; ``scenario=None`` keeps the direct
(instantaneous) loop, and the null scenario — no latency, no faults, no
deadline — reproduces the direct loop's output bit-for-bit (see
``tests/sim/test_differential.py``).

Fault taxonomy
--------------
* **stragglers** — each round, every active worker is independently a
  straggler with probability ``straggler_rate``; its local compute time
  is multiplied by ``straggler_slowdown``. Draws come from the
  simulator's own seeded stream, so enabling stragglers never perturbs
  training or drop randomness.
* **churn / crash / restart** — ``churn`` is a schedule of
  ``(round, worker_id, "leave" | "join")`` applied at round starts. A
  departed worker computes nothing and sends nothing (its rounds are
  simply absent); a departed *server* silently loses every slice
  addressed to it, which makes every upload partial — the SLM
  *uncertain event* path — until it rejoins or re-selection replaces
  it. Crash/restart is leave/join on the same rank.
* **partitions** — ``(start_round, end_round, group_a, group_b)``
  blocks both directions between the groups for rounds in
  ``[start, end)``. Blocked links drop deterministically (no RNG
  draw), so a partitioned run stays byte-reproducible.
* **deadline + bounded retry** — workers whose sends are dropped retry
  up to ``max_retries`` times with exponential backoff
  (``retry_backoff_s * backoff_factor ** attempt``); the server closes
  the round at ``round_timeout_s`` regardless, and any worker whose
  slices are late or missing becomes an uncertain event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .latency import LatencyConfig

__all__ = ["FaultScenario"]

_CHURN_ACTIONS = ("leave", "join")


@dataclass(frozen=True)
class FaultScenario:
    """Declarative fault + timing scenario for one federated run."""

    name: str = "null"
    #: message latency spec (None = instantaneous delivery)
    latency: LatencyConfig | None = None
    #: server-side round deadline in virtual seconds (None = wait for
    #: every slice to resolve; drops still resolve instantly)
    round_timeout_s: float | None = None
    #: bounded resend attempts after a dropped send
    max_retries: int = 0
    retry_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    #: default local compute time per round for workers that do not
    #: carry their own compute-time model (see Worker.compute_time)
    base_compute_s: float = 0.0
    #: per-round straggler process: rate in [0, 1], multiplicative slowdown
    straggler_rate: float = 0.0
    straggler_slowdown: float = 5.0
    #: (round, worker_id, "leave" | "join") schedule, applied at round start
    churn: tuple[tuple[int, int, str], ...] = ()
    #: (start_round, end_round, group_a, group_b) transient partitions
    partitions: tuple[tuple[int, int, tuple[int, ...], tuple[int, ...]], ...] = ()
    #: extra seed folded into the fault-process stream (stragglers)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.round_timeout_s is not None and self.round_timeout_s <= 0:
            raise ValueError("round_timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError(
                "retry_backoff_s must be >= 0 and backoff_factor >= 1"
            )
        if self.base_compute_s < 0:
            raise ValueError("base_compute_s must be non-negative")
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError("straggler_rate must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        for entry in self.churn:
            rnd, wid, action = entry
            if rnd < 0 or wid < 0:
                raise ValueError(f"bad churn entry {entry!r}")
            if action not in _CHURN_ACTIONS:
                raise ValueError(
                    f"churn action must be one of {_CHURN_ACTIONS}, got {action!r}"
                )
        for entry in self.partitions:
            start, end, group_a, group_b = entry
            if not 0 <= start < end:
                raise ValueError(f"bad partition window in {entry!r}")
            if not group_a or not group_b:
                raise ValueError(f"partition groups must be non-empty: {entry!r}")
            if set(group_a) & set(group_b):
                raise ValueError(f"partition groups overlap: {entry!r}")

    # -- queries ---------------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when the scenario injects no timing and no faults at all."""
        return (
            self.latency is None
            and self.round_timeout_s is None
            and self.max_retries == 0
            and self.base_compute_s == 0.0
            and self.straggler_rate == 0.0
            and not self.churn
            and not self.partitions
        )

    def churn_at(self, round_idx: int) -> list[tuple[int, str]]:
        """The (worker, action) churn entries scheduled for one round."""
        return [(w, a) for r, w, a in self.churn if r == round_idx]

    def partition_links(
        self, round_idx: int, num_nodes: int
    ) -> set[tuple[int, int]]:
        """Directed links blocked during ``round_idx`` (both directions)."""
        blocked: set[tuple[int, int]] = set()
        for start, end, group_a, group_b in self.partitions:
            if not start <= round_idx < end:
                continue
            for a in group_a:
                for b in group_b:
                    if a < num_nodes and b < num_nodes:
                        blocked.add((a, b))
                        blocked.add((b, a))
        return blocked

    def retry_delay(self, attempt: int) -> float:
        """Backoff before resend number ``attempt`` (0-based)."""
        return self.retry_backoff_s * self.backoff_factor**attempt

    # -- constructors ----------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultScenario":
        """The null scenario: kernel-scheduled but fault- and latency-free.

        Differential-tested to reproduce the direct (non-simulated)
        trainer bit-for-bit; the scheduler-overhead benchmark measures
        this fast path.
        """
        return cls(name="null")
