"""Pluggable per-link latency models for the simulated network.

A latency model answers one question: how many virtual seconds does a
message of ``nbytes`` take from ``src`` to ``dst``? Three families cover
the literature's usual assumptions:

* :class:`ConstantLatency` — fixed propagation delay (plus an optional
  per-byte transfer term, i.e. finite bandwidth);
* :class:`UniformLatency` — jitter in a ``[low, high]`` band;
* :class:`LognormalLatency` — heavy-tailed WAN-style delay
  (``median * exp(sigma * N(0,1))``), the distribution under which
  stragglers and deadline misses actually happen.

:class:`PerLinkLatency` overlays per-directed-link overrides on any
default model (e.g. one slow cross-region link). Models are sampled
with an explicit ``rng`` owned by the network, so the latency stream is
seeded and independent of the drop stream — adding latency to a
scenario never perturbs which messages drop.

:func:`make_latency` builds a model from the declarative
:class:`LatencyConfig` that experiment configs embed (kind + params),
keeping :class:`~repro.sim.faults.FaultScenario` JSON-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "PerLinkLatency",
    "LatencyConfig",
    "make_latency",
]


class LatencyModel(Protocol):
    """One-way delay for a message on a directed link."""

    def sample(
        self, rng: np.random.Generator, src: int, dst: int, nbytes: int
    ) -> float: ...


class ConstantLatency:
    """Fixed delay plus an optional per-byte (bandwidth) term."""

    def __init__(self, delay_s: float, per_byte_s: float = 0.0):
        if delay_s < 0 or per_byte_s < 0:
            raise ValueError("latency terms must be non-negative")
        self.delay_s = float(delay_s)
        self.per_byte_s = float(per_byte_s)

    def sample(
        self, rng: np.random.Generator, src: int, dst: int, nbytes: int
    ) -> float:
        return self.delay_s + self.per_byte_s * nbytes


class UniformLatency:
    """Uniform jitter in ``[low_s, high_s]`` plus optional per-byte term."""

    def __init__(self, low_s: float, high_s: float, per_byte_s: float = 0.0):
        if not 0 <= low_s <= high_s:
            raise ValueError("need 0 <= low_s <= high_s")
        if per_byte_s < 0:
            raise ValueError("per_byte_s must be non-negative")
        self.low_s = float(low_s)
        self.high_s = float(high_s)
        self.per_byte_s = float(per_byte_s)

    def sample(
        self, rng: np.random.Generator, src: int, dst: int, nbytes: int
    ) -> float:
        base = (
            self.low_s
            if self.high_s == self.low_s
            else float(rng.uniform(self.low_s, self.high_s))
        )
        return base + self.per_byte_s * nbytes


class LognormalLatency:
    """Heavy-tailed delay: ``median_s * exp(sigma * N(0, 1))``."""

    def __init__(self, median_s: float, sigma: float, per_byte_s: float = 0.0):
        if median_s <= 0:
            raise ValueError("median_s must be positive")
        if sigma < 0 or per_byte_s < 0:
            raise ValueError("sigma and per_byte_s must be non-negative")
        self.median_s = float(median_s)
        self.sigma = float(sigma)
        self.per_byte_s = float(per_byte_s)

    def sample(
        self, rng: np.random.Generator, src: int, dst: int, nbytes: int
    ) -> float:
        base = self.median_s * float(np.exp(self.sigma * rng.standard_normal()))
        return base + self.per_byte_s * nbytes


class PerLinkLatency:
    """A default model with per-directed-link overrides."""

    def __init__(
        self,
        default: LatencyModel,
        overrides: dict[tuple[int, int], LatencyModel] | None = None,
    ):
        self.default = default
        self.overrides = dict(overrides or {})

    def sample(
        self, rng: np.random.Generator, src: int, dst: int, nbytes: int
    ) -> float:
        model = self.overrides.get((src, dst), self.default)
        return model.sample(rng, src, dst, nbytes)


@dataclass(frozen=True)
class LatencyConfig:
    """Declarative latency spec embedded in :class:`FaultScenario`.

    ``kind``: ``"constant"`` (uses ``a`` = delay), ``"uniform"``
    (``a`` = low, ``b`` = high) or ``"lognormal"`` (``a`` = median,
    ``b`` = sigma). ``per_byte_s`` adds a bandwidth term to any kind.
    """

    kind: str = "constant"
    a: float = 0.0
    b: float = 0.0
    per_byte_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("constant", "uniform", "lognormal"):
            raise ValueError(f"unknown latency kind {self.kind!r}")


def make_latency(spec: LatencyConfig | None) -> LatencyModel | None:
    """Instantiate the model a :class:`LatencyConfig` describes."""
    if spec is None:
        return None
    if spec.kind == "constant":
        return ConstantLatency(spec.a, per_byte_s=spec.per_byte_s)
    if spec.kind == "uniform":
        return UniformLatency(spec.a, spec.b, per_byte_s=spec.per_byte_s)
    return LognormalLatency(spec.a, spec.b, per_byte_s=spec.per_byte_s)
