"""Deterministic discrete-event simulation kernel.

FIFL's reputation model is built on *uncertain events* — uploads that
never arrive (S4.2) — and the paper's polycentric architecture argument
(S3.2) is really about a network with latency, stragglers and node
churn. This kernel supplies the missing substrate: a **virtual clock**
that advances only when events fire, a **seeded event heap** with stable
FIFO tie-breaking at equal timestamps, and **process-style actors**
(plain generators that ``yield`` delays) for multi-step behaviours like
bounded retry with backoff.

Determinism contract
--------------------
The kernel never reads wall-clock time and never iterates an unordered
container: event order is a pure function of ``(time, insertion seq)``,
and all randomness flows through the simulator's single seeded
``rng``. Two runs with the same seed and the same schedule of calls
execute events in exactly the same order at exactly the same virtual
times — which is what lets a fully seeded federated run write a
byte-identical telemetry trace (see ``tests/sim/`` and
``tests/telemetry/test_trace_determinism.py``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

import numpy as np

__all__ = ["Simulator"]


class Simulator:
    """Virtual clock + event heap + actor scheduler.

    Events are ``(time, seq, fn, args)`` heap entries: ``seq`` is the
    monotonically increasing insertion index, so events scheduled for
    the same virtual time run in scheduling order (stable tie-break).
    Cancellation is lazy — cancelled ids are skipped at pop time.
    """

    def __init__(self, seed: int | Iterable[int] = 0, start: float = 0.0):
        self._now = float(start)
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._cancelled: set[int] = set()
        #: fault processes (stragglers, churn jitter, ...) draw from this
        #: stream so they never disturb the training or network streams
        self.rng = np.random.default_rng(seed)
        self.events_run = 0

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward with no events in between.

        Refuses to jump over a pending event — that would reorder the
        simulation; run or cancel it first.
        """
        if t < self._now:
            raise ValueError(f"cannot move clock backwards ({t} < {self._now})")
        nxt = self.peek()
        if nxt is not None and nxt < t:
            raise RuntimeError(
                f"pending event at t={nxt} blocks advancing the clock to {t}"
            )
        self._now = float(t)

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> int:
        """Run ``fn(*args)`` after ``delay`` virtual seconds; returns an id."""
        return self.schedule_at(self._now + float(delay), fn, *args)

    def schedule_at(self, t: float, fn: Callable, *args: Any) -> int:
        """Run ``fn(*args)`` at absolute virtual time ``t``."""
        if t < self._now:
            raise ValueError(f"cannot schedule in the past ({t} < {self._now})")
        eid = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (float(t), eid, fn, args))
        return eid

    def cancel(self, event_id: int) -> None:
        """Drop a scheduled event (no-op if it already ran)."""
        self._cancelled.add(event_id)

    def spawn(self, gen: Generator[float, None, None], delay: float = 0.0) -> int:
        """Run a process-style actor: a generator that yields delays.

        The generator body runs inside events; each ``yield d`` suspends
        the actor for ``d`` virtual seconds. Returning (or raising
        StopIteration) ends the process.
        """

        def _advance() -> None:
            try:
                d = next(gen)
            except StopIteration:
                return
            self.schedule(float(d), _advance)

        return self.schedule(delay, _advance)

    # -- execution -------------------------------------------------------------

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][1] in self._cancelled:
            self._cancelled.discard(heapq.heappop(heap)[1])

    def peek(self) -> float | None:
        """Virtual time of the next live event (None when idle)."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def idle(self) -> bool:
        """True when no live events remain."""
        return self.peek() is None

    def step(self) -> bool:
        """Pop and run the earliest event; False when the heap is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        t, _, fn, args = heapq.heappop(self._heap)
        self._now = t
        self.events_run += 1
        fn(*args)
        return True

    def run_batch(self) -> int:
        """Run every event scheduled at the next (single) timestamp.

        Events an executing callback schedules *at that same timestamp*
        join the batch — the round collector relies on this so a
        zero-latency round resolves in one batch.
        """
        t = self.peek()
        if t is None:
            return 0
        ran = 0
        while True:
            nxt = self.peek()
            if nxt is None or nxt > t:
                return ran
            self.step()
            ran += 1

    def run_until(self, t: float) -> int:
        """Run all events with time <= ``t``; clock ends exactly at ``t``."""
        ran = 0
        while True:
            nxt = self.peek()
            if nxt is None or nxt > t:
                break
            self.step()
            ran += 1
        self.advance_to(t)
        return ran

    def run(self, max_events: int | None = None) -> int:
        """Drain the heap (bounded by ``max_events`` if given)."""
        ran = 0
        while self.step():
            ran += 1
            if max_events is not None and ran >= max_events:
                break
        return ran
