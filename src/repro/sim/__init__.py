"""repro.sim — deterministic discrete-event simulation of the federation.

The kernel (:class:`Simulator`) supplies a virtual clock, a seeded event
heap with stable FIFO tie-breaking, and process-style actors. On top of
it, :mod:`repro.sim.latency` gives the network per-link delay models,
:mod:`repro.sim.faults` declares fault scenarios (stragglers, churn,
crash/restart, partitions, round deadline + bounded retry), and
:class:`SimRoundRunner` drives the trainer's upload/collection phase on
the virtual clock. ``FaultScenario.none()`` reproduces the direct
trainer bit-for-bit (differential-tested) at <5% overhead.
"""

from .faults import FaultScenario
from .kernel import Simulator
from .latency import (
    ConstantLatency,
    LatencyConfig,
    LatencyModel,
    LognormalLatency,
    PerLinkLatency,
    UniformLatency,
    make_latency,
)
from .round_sim import SimRoundRunner

__all__ = [
    "Simulator",
    "FaultScenario",
    "SimRoundRunner",
    "LatencyModel",
    "LatencyConfig",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "PerLinkLatency",
    "make_latency",
]
