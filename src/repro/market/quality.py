"""FIFL market weights measured from real gradient geometry.

The market experiments (S5.2) need each mechanism's reward weights for a
population of workers who differ only in how much data they own. The four
baselines map claimed sample counts straight to weights (Eq. 19-22). FIFL
has no such closed form — its weight is the gradient-distance contribution
— so we *measure* it: spin up a one-shot federation on synthetic blob data
where worker ``i`` owns ``n_i`` samples, have every worker compute one
full-batch local gradient at a common parameter point, and run the actual
contribution pipeline (Eq. 13-14) on those gradients.

This captures the property the paper argues for analytically: more data
means a lower-variance local gradient, hence a smaller distance to the
pooled global gradient and a larger contribution — and very small workers
fall below the baseline ``b_h`` and earn nothing (the free-rider guard).
"""

from __future__ import annotations

import numpy as np

from ..core.contribution import contributions, gradient_distance
from ..datasets import make_blobs, sized_partition
from ..fl.gradients import fedavg
from ..nn import SoftmaxCrossEntropy, build_logreg

__all__ = ["measure_fifl_weights"]

_N_FEATURES = 16
_N_CLASSES = 4


def _full_batch_gradient(model, x, y, loss_fn) -> np.ndarray:
    loss_fn(model.forward(x, training=True), y)
    model.backward(loss_fn.backward())
    return model.get_flat_grads()


def measure_fifl_weights(
    samples: np.ndarray,
    reference_quantile: float = 0.3,
    seed: int = 0,
    n_probe_rounds: int = 5,
) -> np.ndarray:
    """FIFL reward weights for workers owning ``samples[i]`` data points.

    Runs ``n_probe_rounds`` one-shot gradient measurements (different
    random draws of each worker's dataset) and averages the contribution
    of each worker; negative contributions are clipped to zero (punished
    workers receive no reward in the market, they pay).

    ``reference_quantile`` sets the free-rider guard: the baseline ``b_h``
    is the gradient distance of a probe worker owning the population's
    q-th quantile of data, so workers below roughly that quality earn
    nothing (S4.3's "prevent free-riders ... from joining").
    """
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1 or samples.size < 2:
        raise ValueError("need at least two workers")
    if (samples <= 0).any():
        raise ValueError("sample counts must be positive")
    if not 0.0 <= reference_quantile < 1.0:
        raise ValueError("reference_quantile must be in [0, 1)")
    if n_probe_rounds <= 0:
        raise ValueError("n_probe_rounds must be positive")

    n_ref = max(1, int(np.quantile(samples, reference_quantile)))
    n_workers = samples.size
    totals = np.zeros(n_workers)
    loss_fn = SoftmaxCrossEntropy()

    for probe in range(n_probe_rounds):
        # A moderately hard probe task (low signal-to-noise) spreads the
        # contribution profile across the quality range; with an easy task
        # every worker's gradient is near-perfect and FIFL cannot
        # discriminate (calibrated in EXPERIMENTS.md).
        data = make_blobs(
            n_samples=4096,
            n_features=_N_FEATURES,
            num_classes=_N_CLASSES,
            signal=1.0,
            noise=2.0,
            seed=seed * 1009 + probe,
        )
        # the reference worker is appended as an extra probe participant
        shards = sized_partition(
            data, np.append(samples, n_ref), seed=seed * 31 + probe, replace=True
        )
        model = build_logreg(_N_FEATURES, _N_CLASSES, seed=seed)
        theta = model.get_flat_params()
        grads = []
        for shard in shards:
            model.set_flat_params(theta)
            grads.append(
                _full_batch_gradient(model, shard.x, shard.y, loss_fn)
            )
        worker_grads = grads[:n_workers]
        ref_grad = grads[n_workers]
        global_grad = fedavg(worker_grads, samples.astype(float))
        distances = {
            i: gradient_distance(global_grad, g) for i, g in enumerate(worker_grads)
        }
        b_h = gradient_distance(global_grad, ref_grad)
        if b_h <= 0.0:
            continue
        contribs = contributions(distances, b_h)
        totals += np.array([contribs[i] for i in range(n_workers)])

    weights = np.maximum(totals / n_probe_rounds, 0.0)
    if weights.sum() == 0.0:
        # degenerate probe (all below the guard): fall back to uniform so
        # downstream normalization stays well-defined
        weights = np.full(n_workers, 1.0 / n_workers)
    return weights
