"""Worker-market simulator for the incentive-comparison experiments (S5.2).

The paper's setup: 20 workers with sample counts ~ U[1, 10000], grouped
into ten 1000-wide quality deciles. Five federations — one per incentive
mechanism — compete for them. Every mechanism distributes the same total
budget ``I_sum``; a worker's probability of joining a federation equals
its *relative* reward share there (the mechanism's "attractiveness" to
that worker). Experiments average 100 repetitions of 500 iterations.

Outputs map one-to-one onto the paper's figures:

* :meth:`MarketSimulator.reward_distribution` -> Fig. 4(a)
* :meth:`MarketSimulator.attractiveness`      -> Fig. 4(b)
* :meth:`MarketSimulator.simulate_market`     -> Fig. 5(a)/(b)
* :meth:`MarketSimulator.unreliable_revenues` -> Fig. 6
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.baselines import BASELINE_WEIGHTS
from .quality import measure_fifl_weights

__all__ = ["MarketConfig", "MECHANISMS", "MarketOutcome", "MarketSimulator"]

#: Mechanism names in the paper's plotting order.
MECHANISMS = ("fifl", "individual", "equal", "union", "shapley")


@dataclass
class MarketConfig:
    """Population and simulation parameters (paper defaults)."""

    num_workers: int = 20
    min_samples: int = 1
    max_samples: int = 10_000
    num_groups: int = 10
    iterations: int = 500
    repetitions: int = 100
    total_budget: float = 1.0
    fifl_probe_rounds: int = 5

    def __post_init__(self) -> None:
        if self.num_workers < 2:
            raise ValueError("need at least two workers")
        if not 1 <= self.min_samples < self.max_samples:
            raise ValueError("need 1 <= min_samples < max_samples")
        if self.num_groups <= 0 or self.iterations <= 0 or self.repetitions <= 0:
            raise ValueError("num_groups/iterations/repetitions must be positive")
        if self.total_budget <= 0:
            raise ValueError("total_budget must be positive")


@dataclass
class MarketOutcome:
    """Aggregated results of one full market simulation."""

    # mechanism -> per-group mean reward (Fig. 4a)
    group_rewards: dict[str, np.ndarray]
    # mechanism -> per-group mean attractiveness (Fig. 4b)
    group_attractiveness: dict[str, np.ndarray]
    # mechanism -> fraction of population data attracted (Fig. 5a)
    data_share: dict[str, float]
    # mechanism -> revenue relative to FIFL in percent (Fig. 5b)
    relative_revenue: dict[str, float]
    group_edges: np.ndarray = field(default_factory=lambda: np.array([]))


class MarketSimulator:
    """Monte-Carlo simulator of workers choosing among federations."""

    def __init__(self, config: MarketConfig | None = None, seed: int = 0):
        self.config = config if config is not None else MarketConfig()
        self.seed = seed

    # -- population ---------------------------------------------------------

    def draw_population(self, rng: np.random.Generator) -> np.ndarray:
        """Sample counts ~ U[min, max] for each worker."""
        cfg = self.config
        return rng.integers(cfg.min_samples, cfg.max_samples + 1, size=cfg.num_workers)

    def group_of(self, samples: np.ndarray) -> np.ndarray:
        """Quality-decile index per worker (paper: width-1000 bins)."""
        cfg = self.config
        width = (cfg.max_samples - cfg.min_samples + 1) / cfg.num_groups
        groups = ((samples - cfg.min_samples) / width).astype(int)
        return np.clip(groups, 0, cfg.num_groups - 1)

    # -- per-mechanism weights -----------------------------------------------

    def mechanism_weights(
        self, samples: np.ndarray, seed: int = 0
    ) -> dict[str, np.ndarray]:
        """Normalized reward shares per mechanism for this population."""
        shares: dict[str, np.ndarray] = {}
        for name, fn in BASELINE_WEIGHTS.items():
            w = np.asarray(fn(samples.astype(float)), dtype=np.float64)
            shares[name] = w / w.sum()
        fifl = measure_fifl_weights(
            samples, seed=seed, n_probe_rounds=self.config.fifl_probe_rounds
        )
        total = fifl.sum()
        shares["fifl"] = fifl / total if total > 0 else fifl
        return shares

    # -- figure-level quantities ----------------------------------------------

    def reward_distribution(
        self, repetitions: int | None = None
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Fig. 4(a): mean reward per quality group per mechanism."""
        cfg = self.config
        reps = repetitions if repetitions is not None else cfg.repetitions
        sums = {m: np.zeros(cfg.num_groups) for m in MECHANISMS}
        counts = {m: np.zeros(cfg.num_groups) for m in MECHANISMS}
        rng = np.random.default_rng(self.seed)
        for rep in range(reps):
            samples = self.draw_population(rng)
            groups = self.group_of(samples)
            shares = self.mechanism_weights(samples, seed=self.seed * 7919 + rep)
            for m in MECHANISMS:
                rewards = shares[m] * cfg.total_budget
                np.add.at(sums[m], groups, rewards)
                np.add.at(counts[m], groups, 1.0)
        means = {
            m: np.divide(
                sums[m], counts[m], out=np.zeros(cfg.num_groups), where=counts[m] > 0
            )
            for m in MECHANISMS
        }
        edges = np.linspace(
            self.config.min_samples, self.config.max_samples, cfg.num_groups + 1
        )
        return means, edges

    @staticmethod
    def attractiveness_of(shares: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Per-worker relative reward proportion across mechanisms."""
        stacked = np.stack([shares[m] for m in MECHANISMS])
        totals = stacked.sum(axis=0)
        totals[totals == 0] = 1.0
        rel = stacked / totals
        return {m: rel[i] for i, m in enumerate(MECHANISMS)}

    def attractiveness(
        self, repetitions: int | None = None
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Fig. 4(b): mean attractiveness per quality group per mechanism."""
        cfg = self.config
        reps = repetitions if repetitions is not None else cfg.repetitions
        sums = {m: np.zeros(cfg.num_groups) for m in MECHANISMS}
        counts = np.zeros(cfg.num_groups)
        rng = np.random.default_rng(self.seed)
        for rep in range(reps):
            samples = self.draw_population(rng)
            groups = self.group_of(samples)
            shares = self.mechanism_weights(samples, seed=self.seed * 7919 + rep)
            attr = self.attractiveness_of(shares)
            for m in MECHANISMS:
                np.add.at(sums[m], groups, attr[m])
            np.add.at(counts, groups, 1.0)
        safe = np.where(counts > 0, counts, 1.0)
        means = {m: sums[m] / safe for m in MECHANISMS}
        edges = np.linspace(
            self.config.min_samples, self.config.max_samples, cfg.num_groups + 1
        )
        return means, edges

    def simulate_market(
        self, repetitions: int | None = None, iterations: int | None = None
    ) -> MarketOutcome:
        """Fig. 5: greedy joining -> data share and relative revenue."""
        cfg = self.config
        reps = repetitions if repetitions is not None else cfg.repetitions
        iters = iterations if iterations is not None else cfg.iterations
        rng = np.random.default_rng(self.seed)
        data_attracted = {m: 0.0 for m in MECHANISMS}
        revenue_sums = {m: 0.0 for m in MECHANISMS}
        group_rewards, edges = self.reward_distribution(repetitions=min(reps, 10))
        group_attr, _ = self.attractiveness(repetitions=min(reps, 10))

        for rep in range(reps):
            samples = self.draw_population(rng)
            shares = self.mechanism_weights(samples, seed=self.seed * 7919 + rep)
            attr = self.attractiveness_of(shares)
            probs = np.stack([attr[m] for m in MECHANISMS])  # (M, N)
            # normalize defensively (zero-share workers join uniformly)
            col = probs.sum(axis=0)
            probs[:, col == 0] = 1.0 / len(MECHANISMS)
            probs /= probs.sum(axis=0, keepdims=True)
            # Each iteration every worker picks one federation to train with.
            choices = np.empty((iters, cfg.num_workers), dtype=int)
            for i in range(cfg.num_workers):
                choices[:, i] = rng.choice(len(MECHANISMS), size=iters, p=probs[:, i])
            for k, m in enumerate(MECHANISMS):
                member_mask = choices == k  # (iters, N)
                attracted = (member_mask * samples).sum(axis=1)  # per iteration
                data_attracted[m] += float(attracted.sum())
                revenue_sums[m] += float(np.log1p(attracted).sum())

        total_data = sum(data_attracted.values())
        data_share = {m: data_attracted[m] / total_data for m in MECHANISMS}
        fifl_rev = revenue_sums["fifl"]
        relative = {
            m: 100.0 * (revenue_sums[m] - fifl_rev) / fifl_rev for m in MECHANISMS
        }
        return MarketOutcome(
            group_rewards=group_rewards,
            group_attractiveness=group_attr,
            data_share=data_share,
            relative_revenue=relative,
            group_edges=edges,
        )

    # -- unreliable federations (Fig. 6) -----------------------------------------

    def unreliable_revenues(
        self,
        attack_degrees: tuple[float, ...] = (0.05, 0.15, 0.25, 0.385),
        unreliable_fraction: float = 0.385,
        repetitions: int | None = None,
        detection_rate: float = 1.0,
    ) -> dict[float, dict[str, float]]:
        """Fig. 6: revenue of each mechanism relative to FIFL under attack.

        Composition of the paper's two experimental ingredients:

        1. the *market*: honest workers join federations with probability
           proportional to their attractiveness there, so mechanisms that
           pay high-quality workers more hold more honest data;
        2. the *attack model*: a fraction of the population are attackers
           whose claimed data is worthless. Undetected attackers (a) scale
           the federation's gross revenue down by the scenario attack
           degree ℧ (model damage) and (b) absorb their reward share of
           the budget (wasted expenditure). FIFL detects attackers at
           ``detection_rate`` and both excludes and refuses to pay them.

        Net revenue per repetition:

            net_m = Ψ(honest member data) * (1 - ℧ * undetected?)
                    - I_sum * (share of rewards paid to attackers)

        Returned values are percentages relative to FIFL (FIFL = 0).
        """
        cfg = self.config
        if not 0.0 < unreliable_fraction < 1.0:
            raise ValueError("unreliable_fraction must be in (0, 1)")
        if not 0.0 <= detection_rate <= 1.0:
            raise ValueError("detection_rate must be in [0, 1]")
        for degree in attack_degrees:
            if not 0.0 <= degree <= 1.0:
                raise ValueError("attack degrees must be in [0, 1]")
        reps = repetitions if repetitions is not None else cfg.repetitions
        n_attackers = max(1, int(round(unreliable_fraction * cfg.num_workers)))

        out: dict[float, dict[str, float]] = {}
        for degree in attack_degrees:
            rng = np.random.default_rng(self.seed)  # paired draws per degree
            sums = {m: 0.0 for m in MECHANISMS}
            for rep in range(reps):
                samples = self.draw_population(rng).astype(float)
                attackers = np.zeros(cfg.num_workers, dtype=bool)
                attackers[
                    rng.choice(cfg.num_workers, size=n_attackers, replace=False)
                ] = True
                detected = attackers & (rng.random(cfg.num_workers) < detection_rate)
                shares = self.mechanism_weights(
                    samples.astype(np.int64), seed=self.seed * 7919 + rep
                )
                attr = self.attractiveness_of(shares)
                for m in MECHANISMS:
                    join_p = attr[m].copy()
                    if m == "fifl":
                        # detected attackers are expelled before they can
                        # contribute (or collect) anything
                        join_p = np.where(detected, 0.0, join_p)
                    honest_member_data = float(
                        (join_p * samples * ~attackers).sum()
                    )
                    gross = float(np.log1p(honest_member_data))
                    undetected = attackers if m != "fifl" else (attackers & ~detected)
                    damage = degree * gross if undetected.any() else 0.0
                    share_vec = shares[m]
                    if m == "fifl":
                        wasted = float(share_vec[attackers & ~detected].sum())
                    else:
                        wasted = float(share_vec[attackers].sum())
                    sums[m] += max(0.0, gross - damage - cfg.total_budget * wasted)
            fifl_rev = sums["fifl"]
            out[degree] = {
                m: 100.0 * (sums[m] - fifl_rev) / fifl_rev for m in MECHANISMS
            }
        return out
