"""Worker-market simulation for the incentive comparison (paper S5.2)."""

from .market import MECHANISMS, MarketConfig, MarketOutcome, MarketSimulator
from .quality import measure_fifl_weights

__all__ = [
    "MECHANISMS",
    "MarketConfig",
    "MarketOutcome",
    "MarketSimulator",
    "measure_fifl_weights",
]
