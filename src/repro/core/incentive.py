"""Incentive module: reward shares and fairness (paper S4.4).

The reward share of worker ``i`` combines trustworthiness and utility
(Eq. 15):

    I_i = R_i * C_i / sum_{j: C_j > 0} C_j

Positive shares are rewards; negative shares are punishments for workers
whose contribution fell below the baseline. Theorem 2 shows the Pearson
correlation between contributions and rewards is exactly 1 for workers of
equal reputation — implemented here as :func:`fairness_coefficient` so the
property tests can verify it.
"""

from __future__ import annotations

import numpy as np

from .contribution import normalized_shares, normalized_shares_array

__all__ = [
    "reward_shares",
    "reward_shares_array",
    "allocate_rewards",
    "fairness_coefficient",
]


def reward_shares(
    reputations: dict[int, float],
    contribs: dict[int, float],
    punish_mode: str = "contribution",
) -> dict[int, float]:
    """Eq. 15: ``I_i = R_i * C_i / sum_{C_j>0} C_j`` for rewards.

    Punishments (negative ``C_i``) are ambiguous in the paper: applied
    literally, Eq. 15 multiplies the negative share by the attacker's
    reputation, so a persistent attacker whose reputation has decayed to 0
    escapes punishment entirely — contradicting Figures 13-14, where
    punishment magnitude tracks attack intensity. Two modes:

    * ``"contribution"`` (default, matches the figures) — punishment is
      the worker's negative contribution normalized by the round's *total
      absolute* contribution, independent of reputation. This keeps each
      punishment bounded by the round budget (Eq. 15's ``ΣC⁺``
      denominator can be arbitrarily small, which would make a single
      round's punishment unbounded) while preserving the ordering by
      attack severity.
    * ``"eq15"`` — the literal formula, reputation-scaled both ways and
      ``ΣC⁺``-normalized.
    """
    if set(reputations) != set(contribs):
        raise ValueError("reputation and contribution cover different workers")
    if punish_mode not in ("contribution", "eq15"):
        raise ValueError(f"unknown punish_mode {punish_mode!r}")
    shares = normalized_shares(contribs)
    abs_total = sum(abs(c) for c in contribs.values())
    out: dict[int, float] = {}
    for wid, share in shares.items():
        if share >= 0.0 or punish_mode == "eq15":
            out[wid] = reputations[wid] * share
        else:
            out[wid] = contribs[wid] / abs_total if abs_total > 0 else 0.0
    return out


def reward_shares_array(
    reputations: np.ndarray,
    contribs: np.ndarray,
    punish_mode: str = "contribution",
) -> np.ndarray:
    """Batched Eq. 15 over aligned reputation/contribution vectors.

    Mirrors :func:`reward_shares` exactly (both punish modes), with the
    per-worker loop replaced by masked array arithmetic.
    """
    reputations = np.asarray(reputations, dtype=np.float64)
    contribs = np.asarray(contribs, dtype=np.float64)
    if reputations.shape != contribs.shape or reputations.ndim != 1:
        raise ValueError("reputations and contribs must be aligned vectors")
    if punish_mode not in ("contribution", "eq15"):
        raise ValueError(f"unknown punish_mode {punish_mode!r}")
    shares = normalized_shares_array(contribs)
    out = reputations * shares
    if punish_mode == "contribution":
        negative = shares < 0.0
        if negative.any():
            abs_total = np.abs(contribs).sum()
            out[negative] = (
                contribs[negative] / abs_total if abs_total > 0 else 0.0
            )
    return out


def allocate_rewards(
    shares: dict[int, float], total_budget: float
) -> dict[int, float]:
    """Scale shares by the round budget ``I_sum`` (Eq. 18's budget)."""
    if total_budget < 0:
        raise ValueError("budget must be non-negative")
    return {wid: s * total_budget for wid, s in shares.items()}


def fairness_coefficient(x: np.ndarray, y: np.ndarray) -> float:
    """Eq. 16: Pearson correlation between utilities and rewards.

    Ranges over [-1, 1]; 1 means perfectly fair (rewards ordered and
    scaled with utility). Degenerate inputs (either vector constant) have
    no defined correlation; we return 0.0 for them rather than raising, as
    a constant reward vector is neither fair nor unfair.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D vectors of equal length")
    if x.size < 2:
        raise ValueError("need at least two workers for a fairness score")
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
