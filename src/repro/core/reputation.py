"""Reputation module: subjective logic with time decay (paper S4.2).

Two estimators are provided:

* :class:`SLMReputation` — the classic subjective-logic model the paper
  starts from: per-period counts of positive/negative events with an
  uncertainty mass, combined by Eq. 8-9 into a period reputation.
* :class:`DecayReputation` — the paper's extension (Eq. 10):
  ``R(t+1) = (1-γ) R(t) + γ r(t+1)``, an exponential moving average over
  detection outcomes whose fixed point is the worker's honesty
  probability (Theorem 1). FIFL uses this one.

Uncertain events (lost uploads) do not move the decayed reputation — they
are neither evidence for nor against the worker — but they are counted so
SLM's ``Su`` mass and audit records stay faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SLMReputation", "DecayReputation", "theorem1_fixed_point"]


@dataclass
class SLMReputation:
    """Per-period subjective-logic reputation (Eq. 8-9).

    ``alpha_t, alpha_n, alpha_u`` weight trust, distrust, and uncertainty
    in the final score ``R = a_t*St - a_n*Sn - a_u*Su``.
    """

    alpha_t: float = 1.0
    alpha_n: float = 1.0
    alpha_u: float = 1.0
    # per-worker event counts for the current period
    positives: dict[int, int] = field(default_factory=dict)
    negatives: dict[int, int] = field(default_factory=dict)
    uncertains: dict[int, int] = field(default_factory=dict)

    def record(self, worker: int, outcome: bool | None) -> None:
        """Record one event: True=positive, False=negative, None=uncertain."""
        if outcome is None:
            self.uncertains[worker] = self.uncertains.get(worker, 0) + 1
        elif outcome:
            self.positives[worker] = self.positives.get(worker, 0) + 1
        else:
            self.negatives[worker] = self.negatives.get(worker, 0) + 1

    def uncertainty(self, worker: int) -> float:
        """``Su``: the fraction of this worker's events that were lost."""
        pt = self.positives.get(worker, 0)
        pn = self.negatives.get(worker, 0)
        su = self.uncertains.get(worker, 0)
        total = pt + pn + su
        return su / total if total else 0.0

    def trust_scores(self, worker: int) -> tuple[float, float, float]:
        """Eq. 8: ``(St, Sn, Su)`` for the period."""
        pt = self.positives.get(worker, 0)
        pn = self.negatives.get(worker, 0)
        su = self.uncertainty(worker)
        if pt + pn == 0:
            return 0.0, 0.0, su
        st = (1.0 - su) * pt / (pt + pn)
        sn = (1.0 - su) * pn / (pt + pn)
        return st, sn, su

    def reputation(self, worker: int) -> float:
        """Eq. 9: weighted combination of the triple."""
        st, sn, su = self.trust_scores(worker)
        return self.alpha_t * st - self.alpha_n * sn - self.alpha_u * su

    def reset_period(self) -> None:
        """Start a new assessment period (clear counts)."""
        self.positives.clear()
        self.negatives.clear()
        self.uncertains.clear()


class DecayReputation:
    """Time-decayed reputation, Eq. 10: ``R <- (1-γ)R + γ r``.

    ``γ`` controls sensitivity to the latest event; the paper initializes
    ``R(0) = 0`` (Fig. 11). Events are booleans from the detection module;
    uncertain events (None) leave the estimate unchanged.
    """

    def __init__(self, gamma: float = 0.1, initial: float = 0.0):
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        self.gamma = gamma
        self.initial = initial
        self._rep: dict[int, float] = {}
        self._history: dict[int, list[float]] = {}

    def update(self, worker: int, outcome: bool | None) -> float:
        """Fold one detection outcome into the worker's reputation."""
        current = self._rep.get(worker, self.initial)
        if outcome is not None:
            current = (1.0 - self.gamma) * current + self.gamma * float(outcome)
            self._rep[worker] = current
        self._history.setdefault(worker, []).append(current)
        return current

    def update_all(self, outcomes: dict[int, bool | None]) -> dict[int, float]:
        """Vector update for one round; returns current reputations."""
        return {w: self.update(w, o) for w, o in outcomes.items()}

    def reputation(self, worker: int) -> float:
        """Current reputation (``initial`` if never updated)."""
        return self._rep.get(worker, self.initial)

    def history(self, worker: int) -> list[float]:
        """Reputation trajectory, one entry per recorded event."""
        return list(self._history.get(worker, []))

    def reputations(self) -> dict[int, float]:
        """Snapshot of all tracked workers."""
        return dict(self._rep)


def theorem1_fixed_point(p_evil: float) -> float:
    """Theorem 1: with constant attack probability ``p`` the expected
    reputation converges to the honesty probability ``1 - p``."""
    if not 0.0 <= p_evil <= 1.0:
        raise ValueError("p_evil must be in [0, 1]")
    return 1.0 - p_evil
