"""Contribution module: gradient-distance utility measurement (paper S4.3).

A worker's instantaneous utility is measured by how close its local
gradient lies to the unbiased global gradient (the β-smooth / μ-convex
sandwich argument in S4.3 shows the loss of ``θ - G_i`` is bounded both
ways by ``||G_i - G̃||²``). Concretely (Eq. 13-14):

    b_i = ||G̃ - G_i||²          (summable over disjoint slices)
    C_i = 1 - b_i / b_h

where ``b_h`` is a baseline distance that fixes the zero-contribution
level. Two baselines from the paper:

* ``zero_baseline`` — ``b_h = ||G̃ - 0||² = ||G̃||²``: a free-rider
  uploading zeros gets exactly C = 0 (Eq. 14's default);
* ``reference_baseline`` — ``b_h = ||G̃ - G_ref||²`` for a designated
  reference worker (S5.3.3 uses the p_d = 0.2 worker): anyone *better*
  than the reference earns positive contribution, anyone worse is
  punished, which prices low-quality workers out of the federation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gradient_distance",
    "gradient_distances_matrix",
    "sliced_distance",
    "zero_baseline",
    "reference_baseline",
    "contributions",
    "contributions_array",
    "normalized_shares",
    "normalized_shares_array",
]


def gradient_distance(global_grad: np.ndarray, worker_grad: np.ndarray) -> float:
    """``b_i = ||G̃ - G_i||²`` (squared Euclidean, Eq. 13)."""
    global_grad = np.asarray(global_grad, dtype=np.float64)
    worker_grad = np.asarray(worker_grad, dtype=np.float64)
    if global_grad.shape != worker_grad.shape:
        raise ValueError(
            f"gradient shapes differ: {global_grad.shape} vs {worker_grad.shape}"
        )
    diff = global_grad - worker_grad
    return float(diff @ diff)


def gradient_distances_matrix(
    global_grad: np.ndarray,
    gradients: np.ndarray,
    row_sqnorms: np.ndarray | None = None,
) -> np.ndarray:
    """Batched Eq. 13: ``b_i`` for every row of an ``(N, D)`` matrix.

    Uses the expansion ``||G_i - G̃||² = ||G_i||² - 2 G_i·G̃ + ||G̃||²``
    so the hot path is a single GEMV over the gradient matrix instead of
    materializing an (N, D) difference. ``row_sqnorms`` (``||G_i||²``
    per row) can be precomputed once per round and shared across calls
    (e.g. the contribution filter's second pass). Rows where the
    expansion is not exact — non-finite gradients from blown-up
    training, or cancellation driving the result negative — are repaired
    with the direct difference form, so results match the scalar
    reference.
    """
    global_grad = np.asarray(global_grad, dtype=np.float64)
    gradients = np.asarray(gradients, dtype=np.float64)
    if gradients.ndim != 2 or gradients.shape[1] != global_grad.shape[0]:
        raise ValueError(
            f"need (N, {global_grad.shape[0]}) matrix, got {gradients.shape}"
        )
    if row_sqnorms is None:
        row_sqnorms = np.einsum("ij,ij->i", gradients, gradients)
    dists = (
        row_sqnorms
        - 2.0 * (gradients @ global_grad)
        + float(global_grad @ global_grad)
    )
    exact = np.isfinite(dists) & (dists >= 0.0)
    if not exact.all():
        rows = np.flatnonzero(~exact)
        diff = gradients[rows] - global_grad[None, :]
        dists[rows] = np.einsum("ij,ij->i", diff, diff)
    return dists


def sliced_distance(
    global_slices: dict[int, np.ndarray], worker_slices: dict[int, np.ndarray]
) -> float:
    """Eq. 13 as computed in the polycentric protocol: per-server distances
    summed over servers. Because slices partition the vector, this equals
    :func:`gradient_distance` on the recombined vectors exactly."""
    if set(global_slices) != set(worker_slices):
        raise ValueError("global and worker slices cover different servers")
    if not global_slices:
        raise ValueError("no slices")
    return sum(
        gradient_distance(global_slices[j], worker_slices[j]) for j in global_slices
    )


def zero_baseline(global_grad: np.ndarray) -> float:
    """``b_h`` against the all-zeros gradient: ``||G̃||²``."""
    global_grad = np.asarray(global_grad, dtype=np.float64)
    return float(global_grad @ global_grad)


def reference_baseline(global_grad: np.ndarray, reference_grad: np.ndarray) -> float:
    """``b_h`` against a designated reference worker's gradient."""
    return gradient_distance(global_grad, reference_grad)


def contributions(distances: dict[int, float], b_h: float) -> dict[int, float]:
    """Eq. 14: ``C_i = 1 - b_i / b_h`` for every worker.

    Positive when the worker beats the baseline distance, negative when it
    is worse (free-riders and low-quality workers).
    """
    if b_h <= 0.0:
        raise ValueError(f"baseline distance b_h must be positive, got {b_h}")
    for wid, b in distances.items():
        if b < 0.0:
            raise ValueError(f"negative distance for worker {wid}")
    return {wid: 1.0 - b / b_h for wid, b in distances.items()}


def contributions_array(distances: np.ndarray, b_h: float) -> np.ndarray:
    """Batched Eq. 14: ``C_i = 1 - b_i / b_h`` over a distance vector."""
    distances = np.asarray(distances, dtype=np.float64)
    if b_h <= 0.0:
        raise ValueError(f"baseline distance b_h must be positive, got {b_h}")
    if (distances < 0.0).any():
        raise ValueError("negative distance")
    return 1.0 - distances / b_h


def normalized_shares_array(contribs: np.ndarray) -> np.ndarray:
    """Batched contribution weights of Eq. 15 (see :func:`normalized_shares`)."""
    contribs = np.asarray(contribs, dtype=np.float64)
    positive_total = contribs[contribs > 0.0].sum()
    if positive_total <= 0.0:
        return np.zeros_like(contribs)
    return contribs / positive_total


def normalized_shares(contribs: dict[int, float]) -> dict[int, float]:
    """``C_i / sum_{C_j > 0} C_j`` — the contribution weight in Eq. 15.

    Negative contributions keep their sign (they become punishments);
    positive ones sum to exactly 1. If no contribution is positive every
    share is 0 (nothing to distribute this round).
    """
    positive_total = sum(c for c in contribs.values() if c > 0.0)
    if positive_total <= 0.0:
        return {wid: 0.0 for wid in contribs}
    return {wid: c / positive_total for wid, c in contribs.items()}
