"""Robust-aggregation defences from the literature the paper builds on.

The paper positions FIFL's detection module against the Byzantine-tolerant
aggregation line of work (Blanchard et al.'s Krum [3], El Mhamdi et al.
[6], Xie et al.'s Zeno [28]). These rules are implemented here both as
standalone aggregators and as :class:`repro.fl.RoundMechanism` wrappers so
they can be dropped into the trainer for head-to-head comparisons
(``bench_ablation_defenses``):

* :func:`coordinate_median` — per-coordinate median of the uploads;
* :func:`trimmed_mean` — per-coordinate mean after trimming the β largest
  and smallest values;
* :func:`krum` — select the upload with the smallest sum of distances to
  its n−f−2 nearest neighbours.

Unlike FIFL these rules replace the weighted average (so sample-count
weighting is lost) and produce no per-worker assessment — they defend the
model but cannot drive an incentive, which is exactly the gap FIFL fills.
"""

from __future__ import annotations

import numpy as np

from ..fl.trainer import RoundContext, RoundDecision
from .engine import RoundBatch

__all__ = [
    "coordinate_median",
    "trimmed_mean",
    "krum",
    "KrumMechanism",
    "MedianMechanism",
]


def _stack(gradients) -> np.ndarray:
    """Accept a list of flat vectors or an already-stacked (N, D) matrix."""
    if isinstance(gradients, np.ndarray):
        if gradients.ndim != 2:
            raise ValueError("gradient matrix must be 2-D")
        if gradients.shape[0] == 0:
            raise ValueError("no gradients to aggregate")
        return np.asarray(gradients, dtype=np.float64)
    if not gradients:
        raise ValueError("no gradients to aggregate")
    stacked = np.stack([np.asarray(g, dtype=np.float64) for g in gradients])
    if stacked.ndim != 2:
        raise ValueError("gradients must be flat vectors of equal length")
    return stacked


def coordinate_median(gradients: list[np.ndarray]) -> np.ndarray:
    """Per-coordinate median (El Mhamdi et al.-style robust rule)."""
    return np.median(_stack(gradients), axis=0)


def trimmed_mean(gradients: list[np.ndarray], trim: int) -> np.ndarray:
    """Per-coordinate mean after dropping the ``trim`` extremes each side."""
    stacked = _stack(gradients)
    n = stacked.shape[0]
    if trim < 0:
        raise ValueError("trim must be non-negative")
    if 2 * trim >= n:
        raise ValueError(f"cannot trim {trim} from each side of {n} gradients")
    ordered = np.sort(stacked, axis=0)
    return ordered[trim : n - trim].mean(axis=0)


def krum(gradients: list[np.ndarray], num_byzantine: int) -> int:
    """Krum: index of the gradient closest to its peers.

    Scores each upload by the sum of squared distances to its ``n - f - 2``
    nearest neighbours (``f`` = assumed Byzantine count) and returns the
    argmin index.
    """
    stacked = _stack(gradients)
    n = stacked.shape[0]
    if num_byzantine < 0:
        raise ValueError("num_byzantine must be non-negative")
    k = n - num_byzantine - 2
    if k < 1:
        raise ValueError(
            f"Krum needs n - f - 2 >= 1 (n={n}, f={num_byzantine})"
        )
    # pairwise squared distances via the Gram matrix
    sq = (stacked**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (stacked @ stacked.T)
    np.fill_diagonal(d2, np.inf)
    d2 = np.maximum(d2, 0.0)
    scores = np.sort(d2, axis=1)[:, :k].sum(axis=1)
    return int(np.argmin(scores))


class KrumMechanism:
    """Round mechanism: accept only the single Krum-selected worker.

    The trainer's weighted average over one accepted worker reduces to
    exactly that worker's gradient, which is Krum's model update. The
    delivered slices are stacked once into a :class:`RoundBatch` matrix;
    Krum's pairwise distances are a single Gram-matrix GEMM over it.
    """

    def __init__(self, num_byzantine: int):
        if num_byzantine < 0:
            raise ValueError("num_byzantine must be non-negative")
        self.num_byzantine = num_byzantine

    def process_round(self, ctx: RoundContext) -> RoundDecision:
        batch = RoundBatch.from_context(ctx)
        if batch is None:
            return RoundDecision(accept={})
        winner = int(
            batch.worker_ids[krum(batch.gradients, self.num_byzantine)]
        )
        return RoundDecision(
            accept={int(w): bool(w == winner) for w in batch.worker_ids},
            records={"krum_selected": winner},
        )


class MedianMechanism:
    """Round mechanism: accept workers whose gradient is near the median.

    The per-coordinate median itself is not expressible as a weighted
    average of uploads, so this wrapper accepts the ``keep_fraction`` of
    workers closest (L2) to the coordinate-median vector — a practical
    median-filtering defence with the same intent. Median and distances
    are batched column/row reductions over the round's gradient matrix.
    """

    def __init__(self, keep_fraction: float = 0.5):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.keep_fraction = keep_fraction

    def process_round(self, ctx: RoundContext) -> RoundDecision:
        batch = RoundBatch.from_context(ctx)
        if batch is None:
            return RoundDecision(accept={})
        med = coordinate_median(batch.gradients)
        dist_vec = np.linalg.norm(batch.gradients - med[None, :], axis=1)
        dists = {int(w): float(d) for w, d in zip(batch.worker_ids, dist_vec)}
        keep = max(1, int(round(self.keep_fraction * batch.num_workers)))
        order = np.lexsort((batch.worker_ids, dist_vec))
        kept = set(int(w) for w in batch.worker_ids[order[:keep]])
        return RoundDecision(
            accept={int(w): (w in kept) for w in batch.worker_ids},
            records={"median_distances": dists},
        )
