"""Utility and system-revenue model (paper S5.1-S5.2).

The paper expresses the relationship between training data and revenue as
``Ψ = log(1 + n)`` (after Zhan et al.), where ``n`` is a sample count.
Federation revenue is the utility of the pooled data. Attackers are
parameterized by an *attack degree* ℧: an attacker's presence removes
``℧ · Ψ(A)`` from the federation's revenue (S5.2.2), so undetected
attackers depress revenue while detected-and-excluded ones do not.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "utility",
    "federation_revenue",
    "marginal_utility",
    "system_revenue",
]


def utility(n: float | np.ndarray) -> float | np.ndarray:
    """Data utility ``Ψ(n) = log(1 + n)`` (vectorized)."""
    n_arr = np.asarray(n, dtype=np.float64)
    if (n_arr < 0).any():
        raise ValueError("sample counts must be non-negative")
    out = np.log1p(n_arr)
    return float(out) if np.isscalar(n) or n_arr.ndim == 0 else out


def federation_revenue(samples: np.ndarray) -> float:
    """Revenue of a federation holding the given per-worker sample counts."""
    samples = np.asarray(samples, dtype=np.float64)
    if (samples < 0).any():
        raise ValueError("sample counts must be non-negative")
    return float(np.log1p(samples.sum()))


def marginal_utility(samples: np.ndarray, i: int) -> float:
    """Union marginal gain ``Ψ(A) - Ψ(A \\ {i})`` (paper Eq. 21)."""
    samples = np.asarray(samples, dtype=np.float64)
    if not 0 <= i < samples.size:
        raise ValueError(f"worker index {i} out of range")
    total = samples.sum()
    return float(np.log1p(total) - np.log1p(total - samples[i]))


def system_revenue(
    samples: np.ndarray,
    attacker_mask: np.ndarray,
    attack_degree: float,
    detected_mask: np.ndarray | None = None,
) -> float:
    """Net system revenue with attackers present (paper S5.2.2 model).

    * Detected attackers are excluded: they contribute no data and no
      damage (FIFL's behaviour).
    * Undetected attackers contribute their (worthless) claimed data to
      the pool but each removes ``℧ · Ψ(A)`` of revenue, where Ψ(A) is
      the gross pooled revenue. Total damage is capped so revenue never
      goes below zero (a destroyed model yields nothing, not a debt).

    Parameters
    ----------
    samples : per-worker sample counts.
    attacker_mask : boolean, True where the worker is an attacker.
    attack_degree : ℧ per attacker, in [0, 1].
    detected_mask : boolean, True where the mechanism excluded the worker.
        None means no detection at all (the baselines).
    """
    samples = np.asarray(samples, dtype=np.float64)
    attacker_mask = np.asarray(attacker_mask, dtype=bool)
    if samples.shape != attacker_mask.shape:
        raise ValueError("samples and attacker_mask shapes differ")
    if not 0.0 <= attack_degree <= 1.0:
        raise ValueError("attack_degree must be in [0, 1]")
    if detected_mask is None:
        detected_mask = np.zeros_like(attacker_mask)
    detected_mask = np.asarray(detected_mask, dtype=bool)
    if detected_mask.shape != samples.shape:
        raise ValueError("detected_mask shape differs")

    participating = ~detected_mask
    honest_data = samples[participating & ~attacker_mask].sum()
    # Attackers' data is worthless: gross revenue comes from honest data
    # actually in the pool.
    gross = float(np.log1p(honest_data))
    n_undetected_attackers = int((attacker_mask & participating).sum())
    damage = attack_degree * gross * n_undetected_attackers
    return max(0.0, gross - damage)
