"""FIFL core: the paper's incentive mechanism and its four modules."""

from .baselines import (
    BASELINE_WEIGHTS,
    equal_weights,
    individual_weights,
    shapley_enumeration,
    shapley_montecarlo,
    shapley_sum_dp,
    shapley_weights,
    union_weights,
)
from .contribution import (
    contributions,
    gradient_distance,
    normalized_shares,
    reference_baseline,
    sliced_distance,
    zero_baseline,
)
from .detection import (
    AttackDetector,
    DetectionConfig,
    classify,
    detection_scores,
    server_score,
)
from .fifl import FIFLConfig, FIFLMechanism, FIFLRoundRecord
from .incentive import allocate_rewards, fairness_coefficient, reward_shares
from .loss_detection import LossBasedDetector
from .reputation import DecayReputation, SLMReputation, theorem1_fixed_point
from .robust import (
    KrumMechanism,
    MedianMechanism,
    coordinate_median,
    krum,
    trimmed_mean,
)
from .selection import probe_selection, reputation_selection
from .utility import federation_revenue, marginal_utility, system_revenue, utility

__all__ = [
    "AttackDetector",
    "DetectionConfig",
    "classify",
    "detection_scores",
    "server_score",
    "SLMReputation",
    "DecayReputation",
    "theorem1_fixed_point",
    "contributions",
    "gradient_distance",
    "sliced_distance",
    "zero_baseline",
    "reference_baseline",
    "normalized_shares",
    "reward_shares",
    "allocate_rewards",
    "fairness_coefficient",
    "individual_weights",
    "equal_weights",
    "union_weights",
    "shapley_weights",
    "shapley_sum_dp",
    "shapley_enumeration",
    "shapley_montecarlo",
    "BASELINE_WEIGHTS",
    "utility",
    "federation_revenue",
    "marginal_utility",
    "system_revenue",
    "FIFLConfig",
    "FIFLMechanism",
    "FIFLRoundRecord",
    "probe_selection",
    "reputation_selection",
    "coordinate_median",
    "trimmed_mean",
    "krum",
    "KrumMechanism",
    "MedianMechanism",
    "LossBasedDetector",
]
