"""FIFL core: the paper's incentive mechanism and its four modules."""

from .baselines import (
    BASELINE_WEIGHTS,
    equal_weights,
    individual_weights,
    shapley_enumeration,
    shapley_montecarlo,
    shapley_sum_dp,
    shapley_weights,
    union_weights,
)
from .contribution import (
    contributions,
    contributions_array,
    gradient_distance,
    gradient_distances_matrix,
    normalized_shares,
    normalized_shares_array,
    reference_baseline,
    sliced_distance,
    zero_baseline,
)
from .detection import (
    AttackDetector,
    DetectionConfig,
    classify,
    classify_array,
    detection_scores,
    detection_scores_matrix,
    server_score,
)
from .engine import RoundBatch, stack_benchmarks
from .factory import (
    MECHANISM_NAMES,
    AcceptAllConfig,
    AcceptAllMechanism,
    KrumConfig,
    MedianConfig,
    make_mechanism,
)
from .fifl import FIFLConfig, FIFLMechanism, FIFLRoundRecord
from .incentive import (
    allocate_rewards,
    fairness_coefficient,
    reward_shares,
    reward_shares_array,
)
from .loss_detection import LossBasedDetector
from .reputation import DecayReputation, SLMReputation, theorem1_fixed_point
from .robust import (
    KrumMechanism,
    MedianMechanism,
    coordinate_median,
    krum,
    trimmed_mean,
)
from .selection import probe_selection, reputation_selection
from .utility import federation_revenue, marginal_utility, system_revenue, utility

__all__ = [
    "AttackDetector",
    "DetectionConfig",
    "classify",
    "classify_array",
    "detection_scores",
    "detection_scores_matrix",
    "server_score",
    "RoundBatch",
    "stack_benchmarks",
    "MECHANISM_NAMES",
    "AcceptAllConfig",
    "AcceptAllMechanism",
    "KrumConfig",
    "MedianConfig",
    "make_mechanism",
    "contributions_array",
    "gradient_distances_matrix",
    "normalized_shares_array",
    "reward_shares_array",
    "SLMReputation",
    "DecayReputation",
    "theorem1_fixed_point",
    "contributions",
    "gradient_distance",
    "sliced_distance",
    "zero_baseline",
    "reference_baseline",
    "normalized_shares",
    "reward_shares",
    "allocate_rewards",
    "fairness_coefficient",
    "individual_weights",
    "equal_weights",
    "union_weights",
    "shapley_weights",
    "shapley_sum_dp",
    "shapley_enumeration",
    "shapley_montecarlo",
    "BASELINE_WEIGHTS",
    "utility",
    "federation_revenue",
    "marginal_utility",
    "system_revenue",
    "FIFLConfig",
    "FIFLMechanism",
    "FIFLRoundRecord",
    "probe_selection",
    "reputation_selection",
    "coordinate_median",
    "trimmed_mean",
    "krum",
    "KrumMechanism",
    "MedianMechanism",
    "LossBasedDetector",
]
