"""The FIFL mechanism: detection → reputation → contribution → incentive.

:class:`FIFLMechanism` plugs into :class:`repro.fl.FederatedTrainer` as its
round mechanism and implements the full S4 pipeline each communication
round:

1. **Attack detection** — each server scores every delivered slice against
   its own local slice ``g_j^j``; the summed score is thresholded by
   ``S_y`` into ``r_i`` (Eq. 5-7). Rejected gradients never enter the
   aggregate.
2. **Reputation** — detection outcomes (and uncertain events for lost
   uploads) feed the time-decayed reputation ``R_i`` (Eq. 10).
3. **Contribution** — gradient distances to the filtered global gradient
   give ``C_i`` against a baseline ``b_h`` (Eq. 13-14).
4. **Incentive** — reward shares ``I_i = R_i · C_i / ΣC⁺`` (Eq. 15),
   scaled by the round budget; punishments are negative rewards.

Two interchangeable engines implement the pipeline (``FIFLConfig.engine``):

* ``"vectorized"`` (default) — the round's gradients are stacked once
  into a :class:`~repro.core.engine.RoundBatch` matrix and every phase
  runs as batched NumPy ops (one GEMM per server for detection, one
  broadcasted reduction for distances, masked arithmetic for rewards).
* ``"scalar"`` — the literal per-worker reference implementation, kept
  for differential testing; both engines agree to < 1e-8 on every
  per-round output (see ``tests/core/test_engine.py``).

Phase wall-clock lands in :mod:`repro.telemetry` spans under ``fifl.*``
keys (the legacy :mod:`repro.profiling` snapshot still sees them). Each
round additionally emits one ``fifl.round`` trace event — flagged
workers, detection margins against ``S_y``, reputation deltas, rewards,
and the reward-fairness gauges (Gini, normalized share entropy) — plus,
with ``FIFLConfig.audit`` (the default), the full attribution payload
(absolute reputations, contributions, shares, ``b_h``) so a JSONL trace
reconstructs every decision the mechanism made (see :mod:`repro.audit`).

Every round's intermediate results can be committed to a blockchain ledger
(S4.5) for the audit protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..fl.gradients import fedavg, recombine, slice_offsets, split_gradient
from ..fl.trainer import RoundContext, RoundDecision
from ..metrics.fairness import reward_fairness
from ..parallel.backend import (
    BACKENDS,
    ExecutionBackend,
    emit_parallel_telemetry,
    make_backend,
)
from ..population.sharding import balanced_shards, iter_row_shards
from ..profiling import Profiler, get_profiler
from .contribution import (
    contributions,
    contributions_array,
    gradient_distance,
    gradient_distances_matrix,
    reference_baseline,
    zero_baseline,
)
from .detection import AttackDetector, DetectionConfig, detection_scores_matrix
from .engine import RoundBatch, stack_benchmarks
from .incentive import allocate_rewards, reward_shares, reward_shares_array
from .reputation import DecayReputation, SLMReputation

__all__ = ["FIFLRoundRecord", "FIFLMechanism"]

_ENGINES = ("vectorized", "scalar")

#: smallest row shard worth a parallel dispatch (auto-split floor)
_MIN_PARALLEL_ROWS = 16


@dataclass
class FIFLRoundRecord:
    """All per-round FIFL outputs, kept for experiments and audit."""

    round_idx: int
    scores: dict[int, float]
    accepted: dict[int, bool]
    reputations: dict[int, float]
    distances: dict[int, float]
    b_h: float | None
    contribs: dict[int, float]
    shares: dict[int, float]
    rewards: dict[int, float]
    # workers whose upload was lost this round (uncertain outcome); kept on
    # the record so decision lineage (repro.audit) needs no TrainingHistory
    uncertain: tuple[int, ...] = ()


@dataclass
class FIFLConfig:
    """FIFL hyperparameters."""

    detection: DetectionConfig = field(default_factory=DetectionConfig)
    gamma: float = 0.1  # reputation time-decay factor (Eq. 10)
    initial_reputation: float = 0.0
    contribution_baseline: str = "zero"  # "zero" | "reference"
    reference_worker: int | None = None  # required for "reference"
    budget_per_round: float = 1.0  # I_sum(t)
    punish_mode: str = "contribution"  # see incentive.reward_shares
    # Two-pass contribution scoring: first-pass negative contributors are
    # dropped from the aggregate and everyone is re-scored (S4.3's guard
    # against low-quality gradients biasing the reference point).
    contribution_filter: bool = False
    # Reputation estimator: "decay" is the paper's Eq. 10 extension
    # (FIFL's default); "slm" is the classic period-based subjective
    # logic model of Eq. 8-9, with counts reset every slm_period rounds.
    reputation_mode: str = "decay"
    slm_period: int = 10
    slm_alphas: tuple[float, float, float] = (1.0, 1.0, 1.0)
    # What G̃ in Eq. 13 is measured against: "aggregate" (the literal
    # filtered global gradient) or "server_mean" (the mean of the trusted
    # server cluster's own gradients, S4.5). With low-rate label noise on
    # near-linear models the *norm* of a poisoned gradient shrinks, which
    # drags the contaminated aggregate toward mid-poison workers and breaks
    # the quality ordering; the trusted server mean does not have this
    # failure mode (see EXPERIMENTS.md, Figs. 12-13).
    contribution_reference: str = "aggregate"
    # Round pipeline implementation: "vectorized" (batched matrix engine)
    # or "scalar" (per-worker reference path, for differential testing).
    engine: str = "vectorized"
    # Worker-shard streaming for the vectorized kernels: detection scores
    # and gradient distances are per-row reductions, so processing row
    # blocks of at most ``shard_size`` workers bounds kernel temporaries
    # by shard size at identical results (None = whole cohort at once).
    shard_size: int | None = None
    # Execution backend for the sharded kernels ("serial" | "thread" |
    # "process", see repro.parallel). "serial" additionally lets a trainer
    # share its own pool via attach_backend(); a non-serial value makes
    # the mechanism own a private pool. Either way shard results reduce
    # in shard order, so every backend is byte-identical to serial.
    backend: str = "serial"
    max_workers: int | None = None
    # Emit the full attribution payload (absolute reputations, contribution
    # shares, baseline b_h) on every ``fifl.round`` event so an offline
    # trace reconstructs the complete decision lineage (repro.audit). Off
    # only to A/B the emission cost (benchmarks/bench_audit.py).
    audit: bool = True

    def __post_init__(self) -> None:
        if self.shard_size is not None and self.shard_size <= 0:
            raise ValueError("shard_size must be positive (or None)")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive (or None for auto)")
        if self.contribution_baseline not in ("zero", "reference"):
            raise ValueError(
                "contribution_baseline must be 'zero' or 'reference'"
            )
        if self.contribution_baseline == "reference" and self.reference_worker is None:
            raise ValueError("reference baseline needs reference_worker")
        if self.budget_per_round < 0:
            raise ValueError("budget_per_round must be non-negative")
        if self.contribution_reference not in ("aggregate", "server_mean"):
            raise ValueError(
                "contribution_reference must be 'aggregate' or 'server_mean'"
            )
        if self.reputation_mode not in ("decay", "slm"):
            raise ValueError("reputation_mode must be 'decay' or 'slm'")
        if self.slm_period <= 0:
            raise ValueError("slm_period must be positive")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}")


class FIFLMechanism:
    """Stateful FIFL round mechanism (implements ``RoundMechanism``)."""

    def __init__(
        self,
        config: FIFLConfig | None = None,
        ledger=None,
        profiler: Profiler | None = None,
    ):
        self.config = config if config is not None else FIFLConfig()
        self.detector = AttackDetector(self.config.detection)
        self.reputation = DecayReputation(
            gamma=self.config.gamma, initial=self.config.initial_reputation
        )
        a_t, a_n, a_u = self.config.slm_alphas
        self.slm = SLMReputation(alpha_t=a_t, alpha_n=a_n, alpha_u=a_u)
        self._rounds_seen = 0
        self.ledger = ledger
        # Execution backend for the sharded round kernels: built lazily
        # from the config when it names a pool, or adopted from the
        # trainer via attach_backend() (one shared pool per training run).
        self._backend: ExecutionBackend | None = None
        self.profiler = profiler if profiler is not None else get_profiler()
        self.records: list[FIFLRoundRecord] = []
        self._cumulative_rewards: dict[int, float] = {}
        # previous round's reputation vector, for per-round delta telemetry
        self._prev_rep_ids: tuple = ()
        self._prev_rep_vals = np.zeros(0)
        # detection margins (score - S_y) live on the cosine scale; the
        # reputation delta per round is bounded by the decay factor
        self.profiler.register_histogram(
            "fifl.detect_margin",
            (-4.0, -2.0, -1.0, -0.5, -0.2, -0.1, -0.05, 0.0,
             0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0),
        )

    # -- helpers ---------------------------------------------------------------

    def attach_backend(self, backend: ExecutionBackend) -> None:
        """Adopt the trainer's shared execution backend.

        Only when the config left ``backend="serial"`` — an explicit
        non-serial config means the mechanism owns its private pool and
        the trainer's is ignored.
        """
        if self.config.backend == "serial" and backend is not None:
            self._backend = backend

    def _active_backend(self) -> ExecutionBackend | None:
        """The pool to shard kernels over, or ``None`` for inline serial."""
        if self._backend is None and self.config.backend != "serial":
            self._backend = make_backend(self.config.backend, self.config.max_workers)
        backend = self._backend
        if backend is not None and backend.name != "serial":
            return backend
        return None

    def _parallel_windows(self, num_rows: int, backend: ExecutionBackend):
        """Row windows for one parallel dispatch: an explicit shard_size
        wins; otherwise one near-equal shard per pool slot, floored at
        ``_MIN_PARALLEL_ROWS`` rows so dispatch overhead never dominates."""
        if self.config.shard_size is not None:
            return list(iter_row_shards(num_rows, self.config.shard_size))
        shards = min(
            backend.pool_size, max(1, math.ceil(num_rows / _MIN_PARALLEL_ROWS))
        )
        return balanced_shards(num_rows, shards)

    @staticmethod
    def _benchmarks(ctx: RoundContext) -> dict[int, np.ndarray]:
        """Server j's own slice ``g_j^j`` is its benchmark (S4.1).

        Servers are workers (S ⊂ W), so each server holds its local
        gradient *locally* — it does not depend on the lossy network to
        deliver its own slice to itself. The benchmark is sliced directly
        from the server's own update.
        """
        benchmarks = {}
        m = len(ctx.server_ranks)
        for j, srv in enumerate(ctx.server_ranks):
            upd = ctx.updates.get(srv)
            if upd is None:
                continue
            benchmarks[srv] = split_gradient(upd.gradient, m)[j]
        if not benchmarks:
            raise RuntimeError(
                "no server produced a local gradient; cannot detect"
            )
        return benchmarks

    @staticmethod
    def _filtered_global_gradient(
        ctx: RoundContext, accepted: dict[int, bool]
    ) -> np.ndarray | None:
        """Aggregate accepted slices into G̃ exactly as the trainer will."""
        accepted_ids = [w for w in sorted(ctx.slices) if accepted.get(w, False)]
        if not accepted_ids:
            return None
        weights = [ctx.sample_counts[w] for w in accepted_ids]
        agg = []
        for srv in ctx.server_ranks:
            agg.append(fedavg([ctx.slices[w][srv] for w in accepted_ids], weights))
        return recombine(agg)

    @staticmethod
    def _server_mean_gradient(ctx: RoundContext) -> np.ndarray | None:
        """Mean of the server cluster's own full gradients (trusted ref)."""
        grads = [
            ctx.updates[srv].gradient
            for srv in ctx.server_ranks
            if srv in ctx.updates
        ]
        if not grads:
            return None
        return np.mean(grads, axis=0)

    def _score_contributions(
        self, global_grad: np.ndarray, full_grads: dict[int, np.ndarray]
    ) -> tuple[dict[int, float], float | None, dict[int, float]]:
        """Distances, baseline b_h, and contributions against one G̃."""
        distances = {
            w: gradient_distance(global_grad, g) for w, g in full_grads.items()
        }
        if (
            self.config.contribution_baseline == "reference"
            and self.config.reference_worker in full_grads
        ):
            b_h = reference_baseline(
                global_grad, full_grads[self.config.reference_worker]
            )
        else:
            b_h = zero_baseline(global_grad)
        if b_h > 0.0:
            return distances, b_h, contributions(distances, b_h)
        return distances, None, {w: 0.0 for w in distances}

    def _detection_scores_sharded(
        self, batch: RoundBatch, ranks, slots, bench_slices
    ) -> np.ndarray:
        """Detection scores, streamed over worker shards when configured.

        The score kernel is a pure per-row reduction, so concatenating
        per-shard results equals the one-shot call exactly (bit-for-bit:
        each row's GEMV and normalization touch only that row). With a
        non-serial backend the shards run concurrently; the ordered
        reduce keeps the concatenation in shard order regardless of
        completion order, so the output stays byte-identical.
        """
        mode = self.config.detection.mode
        backend = self._active_backend()
        if backend is not None:
            shards = [
                batch.shard(lo, hi)
                for lo, hi in self._parallel_windows(len(batch.worker_ids), backend)
            ]
            pieces = backend.run(
                [
                    (
                        detection_scores_matrix,
                        (sh.worker_ids, sh.gradients, sh.offsets,
                         ranks, slots, bench_slices, mode),
                    )
                    for sh in shards
                ]
            )
            emit_parallel_telemetry(self.profiler, "fifl.detect", backend)
            return np.concatenate(pieces)
        return np.concatenate(
            [
                detection_scores_matrix(
                    sh.worker_ids,
                    sh.gradients,
                    sh.offsets,
                    ranks,
                    slots,
                    bench_slices,
                    mode,
                )
                for sh in batch.iter_shards(self.config.shard_size)
            ]
        )

    def _gradient_distances_sharded(
        self, reference_grad: np.ndarray, batch: RoundBatch
    ) -> np.ndarray:
        """Gradient distances, streamed over worker shards when configured.

        Same contract as detection: per-row kernel, shard-order reduce,
        byte-identical under every backend.
        """
        backend = self._active_backend()
        if backend is not None:
            shards = [
                batch.shard(lo, hi)
                for lo, hi in self._parallel_windows(len(batch.worker_ids), backend)
            ]
            pieces = backend.run(
                [
                    (
                        gradient_distances_matrix,
                        (reference_grad, sh.gradients),
                        {"row_sqnorms": sh.row_sqnorms},
                    )
                    for sh in shards
                ]
            )
            emit_parallel_telemetry(self.profiler, "fifl.distances", backend)
            return np.concatenate(pieces)
        return np.concatenate(
            [
                gradient_distances_matrix(
                    reference_grad, sh.gradients, row_sqnorms=sh.row_sqnorms
                )
                for sh in batch.iter_shards(self.config.shard_size)
            ]
        )

    def _score_contributions_batch(
        self, reference_grad: np.ndarray, batch: RoundBatch
    ) -> tuple[np.ndarray, float | None, np.ndarray]:
        """Batched ``_score_contributions``: one reduction for all workers."""
        dist_vec = self._gradient_distances_sharded(reference_grad, batch)
        ref_worker = self.config.reference_worker
        b_h: float | None
        if (
            self.config.contribution_baseline == "reference"
            and ref_worker is not None
            and (batch.worker_ids == ref_worker).any()
        ):
            idx = int(np.searchsorted(batch.worker_ids, ref_worker))
            b_h = float(dist_vec[idx])
        else:
            b_h = zero_baseline(reference_grad)
        if b_h > 0.0:
            return dist_vec, b_h, contributions_array(dist_vec, b_h)
        return dist_vec, None, np.zeros_like(dist_vec)

    def _update_reputations(
        self, ctx: RoundContext, scores: dict[int, float], accepted: dict[int, bool]
    ) -> tuple[dict[int, bool | None], dict[int, float]]:
        """Fold detection outcomes (plus uncertain events) into reputations."""
        outcomes: dict[int, bool | None] = {w: accepted[w] for w in scores}
        for w in ctx.uncertain:
            outcomes[w] = None
        decayed = self.reputation.update_all(outcomes)
        for w, outcome in outcomes.items():
            self.slm.record(w, outcome)
        self._rounds_seen += 1
        if self.config.reputation_mode == "slm":
            reputations = {w: self.slm.reputation(w) for w in outcomes}
            if self._rounds_seen % self.config.slm_period == 0:
                self.slm.reset_period()
        else:
            reputations = decayed
        return outcomes, reputations

    # -- main entry point --------------------------------------------------------

    def process_round(self, ctx: RoundContext) -> RoundDecision:
        if self.config.engine == "vectorized":
            return self._process_round_vectorized(ctx)
        return self._process_round_scalar(ctx)

    def _process_round_scalar(self, ctx: RoundContext) -> RoundDecision:
        """Reference per-worker pipeline (``engine="scalar"``)."""
        prof = self.profiler
        # 1) attack detection on delivered slices
        with prof.phase("fifl.detect"):
            benchmarks = self._benchmarks(ctx)
            scores, accepted = self.detector.detect(ctx.slices, benchmarks)

        # 2) reputation update: boolean outcome per scored worker,
        #    uncertain (None) for lost uploads
        with prof.phase("fifl.reputation"):
            outcomes, reputations = self._update_reputations(ctx, scores, accepted)

        # 3) contributions against the filtered global gradient
        with prof.phase("fifl.contribution"):
            global_grad = self._filtered_global_gradient(ctx, accepted)
            distances: dict[int, float] = {}
            contribs: dict[int, float] = {}
            b_h: float | None = None
            if global_grad is not None:
                full_grads = {
                    w: recombine([ctx.slices[w][srv] for srv in ctx.server_ranks])
                    for w in ctx.slices
                }
                reference_grad = (
                    self._server_mean_gradient(ctx)
                    if self.config.contribution_reference == "server_mean"
                    else global_grad
                )
                if reference_grad is None:
                    reference_grad = global_grad
                distances, b_h, contribs = self._score_contributions(
                    reference_grad, full_grads
                )
                if self.config.contribution_filter and any(
                    c < 0.0 for c in contribs.values()
                ):
                    # Second pass (S4.3's free-rider guard, closed loop): the
                    # first pass's negative contributors are below the quality
                    # bar, so their gradients are removed from the aggregate
                    # and everyone is re-scored against the cleaned G̃. This
                    # keeps low-quality gradients from biasing the reference
                    # point that scores everyone else.
                    keep = {
                        w: accepted.get(w, False) and contribs.get(w, 0.0) >= 0.0
                        for w in ctx.slices
                    }
                    if self.config.contribution_reference == "aggregate":
                        cleaned = self._filtered_global_gradient(ctx, keep)
                        if cleaned is not None:
                            distances, b_h, contribs = self._score_contributions(
                                cleaned, full_grads
                            )

        # 4) incentive: shares and budget-scaled rewards
        with prof.phase("fifl.incentive"):
            if contribs:
                reps_for_shares = {
                    w: reputations.get(w, self.reputation.reputation(w))
                    for w in contribs
                }
                shares = reward_shares(
                    reps_for_shares, contribs, punish_mode=self.config.punish_mode
                )
            else:
                shares = {}
            rewards = allocate_rewards(shares, self.config.budget_per_round)

        return self._finalize(
            ctx, scores, accepted, outcomes, reputations, distances, b_h,
            contribs, shares, rewards,
        )

    def _process_round_vectorized(self, ctx: RoundContext) -> RoundDecision:
        """Batched pipeline over the round's ``(N, D)`` gradient matrix."""
        prof = self.profiler
        cfg = self.config

        with prof.phase("fifl.batch"):
            batch = RoundBatch.from_context(ctx)
            dim = None
            for srv in ctx.server_ranks:
                upd = ctx.updates.get(srv)
                if upd is not None:
                    dim = np.asarray(upd.gradient).size
                    break
            if dim is None:
                raise RuntimeError(
                    "no server produced a local gradient; cannot detect"
                )
            offsets = (
                batch.offsets
                if batch is not None
                else slice_offsets(dim, len(ctx.server_ranks))
            )

        # 1) attack detection: one GEMM per server over the slice blocks
        with prof.phase("fifl.detect"):
            ranks, slots, bench_slices = stack_benchmarks(ctx, offsets)
            if batch is not None:
                score_vec = self._detection_scores_sharded(
                    batch, ranks, slots, bench_slices
                )
                accept_vec = score_vec >= cfg.detection.threshold
                scores = batch.to_dict(score_vec)
                accepted = batch.to_dict(accept_vec)
            else:
                scores, accepted = {}, {}
            prof.count("fifl.workers_scored", len(scores))

        # 2) reputation (stateful EMA/SLM; O(N) dict update, not a hot path)
        with prof.phase("fifl.reputation"):
            outcomes, reputations = self._update_reputations(ctx, scores, accepted)

        # 3) contributions: masked row-average for G̃, one batched reduction
        #    for all distances
        with prof.phase("fifl.contribution"):
            distances: dict[int, float] = {}
            contribs: dict[int, float] = {}
            b_h: float | None = None
            contrib_vec = None
            if batch is not None:
                accept_mask = np.asarray(
                    [accepted[int(w)] for w in batch.worker_ids], dtype=bool
                )
                global_grad = batch.weighted_average(accept_mask)
                if global_grad is not None:
                    reference_grad = (
                        self._server_mean_gradient(ctx)
                        if cfg.contribution_reference == "server_mean"
                        else global_grad
                    )
                    if reference_grad is None:
                        reference_grad = global_grad
                    dist_vec, b_h, contrib_vec = self._score_contributions_batch(
                        reference_grad, batch
                    )
                    if cfg.contribution_filter and (contrib_vec < 0.0).any():
                        # Second pass: drop first-pass negative contributors
                        # from the aggregate, re-score everyone (see the
                        # scalar path for the rationale).
                        if cfg.contribution_reference == "aggregate":
                            keep_mask = accept_mask & (contrib_vec >= 0.0)
                            cleaned = batch.weighted_average(keep_mask)
                            if cleaned is not None:
                                dist_vec, b_h, contrib_vec = (
                                    self._score_contributions_batch(cleaned, batch)
                                )
                    distances = batch.to_dict(dist_vec)
                    contribs = batch.to_dict(contrib_vec)

        # 4) incentive: masked share arithmetic, budget scaling
        with prof.phase("fifl.incentive"):
            if batch is not None and contrib_vec is not None:
                rep_vec = np.asarray(
                    [
                        reputations.get(int(w), self.reputation.reputation(int(w)))
                        for w in batch.worker_ids
                    ]
                )
                share_vec = reward_shares_array(
                    rep_vec, contrib_vec, punish_mode=cfg.punish_mode
                )
                reward_vec = share_vec * cfg.budget_per_round
                shares = batch.to_dict(share_vec)
                rewards = batch.to_dict(reward_vec)
            else:
                reward_vec = None
                shares, rewards = {}, {}

        return self._finalize(
            ctx, scores, accepted, outcomes, reputations, distances, b_h,
            contribs, shares, rewards,
            score_vec=score_vec if batch is not None else None,
            reward_vec=reward_vec,
        )

    def _finalize(
        self,
        ctx: RoundContext,
        scores: dict[int, float],
        accepted: dict[int, bool],
        outcomes: dict[int, bool | None],
        reputations: dict[int, float],
        distances: dict[int, float],
        b_h: float | None,
        contribs: dict[int, float],
        shares: dict[int, float],
        rewards: dict[int, float],
        score_vec: np.ndarray | None = None,
        reward_vec: np.ndarray | None = None,
    ) -> RoundDecision:
        """Shared bookkeeping: cumulative rewards, records, ledger, verdict.

        Also the mechanism's telemetry choke point: both engines funnel
        their per-round outputs through here, so flagged workers,
        detection margins, reputation deltas and the reward-fairness
        gauges are emitted once, identically, regardless of engine. The
        vectorized engine passes its score/reward vectors (aligned with
        the dicts' key order) so telemetry skips rebuilding them; the
        scalar engine leaves them ``None``.
        """
        for w, amount in rewards.items():
            self._cumulative_rewards[w] = self._cumulative_rewards.get(w, 0.0) + amount

        prof = self.profiler
        if prof.enabled:
            # Per-round mechanism telemetry (flagged workers, detection
            # margins, reputation deltas, reward fairness) involves a
            # sort and several reductions — deferred off the hot path.
            # All referenced dicts/vectors are freshly built this round
            # and never mutated afterwards, so the thunk sees exactly
            # the state it captured.
            prof.defer(
                self._round_telemetry,
                (ctx.round_idx, ctx.uncertain, scores, accepted,
                 reputations, rewards, contribs, shares, b_h,
                 score_vec, reward_vec),
                4,
            )

        record = FIFLRoundRecord(
            round_idx=ctx.round_idx,
            scores=scores,
            accepted=accepted,
            reputations=dict(reputations),
            distances=distances,
            b_h=b_h,
            contribs=contribs,
            shares=shares,
            rewards=rewards,
            uncertain=tuple(sorted(int(w) for w in ctx.uncertain)),
        )
        self.records.append(record)
        if self.ledger is not None:
            with self.profiler.phase("fifl.ledger"):
                self.ledger.append(
                    {
                        "round": ctx.round_idx,
                        "scores": scores,
                        # full outcome map: True/False detection results plus
                        # None for uncertain (lost-upload) events, so the audit
                        # protocol can replay reputations exactly (S4.5)
                        "accepted": outcomes,
                        "reputations": dict(reputations),
                        "contributions": contribs,
                        "rewards": rewards,
                    },
                    signer="server-cluster",
                )

        return RoundDecision(
            accept=accepted,
            records={
                "scores": scores,
                "reputations": dict(reputations),
                "contributions": contribs,
                "rewards": rewards,
            },
        )

    def _round_telemetry(
        self,
        tele,
        round_idx: int,
        uncertain,
        scores: dict[int, float],
        accepted: dict[int, bool],
        reputations: dict[int, float],
        rewards: dict[int, float],
        contribs: dict[int, float],
        shares: dict[int, float],
        b_h: float | None,
        score_vec: np.ndarray | None,
        reward_vec: np.ndarray | None,
    ) -> list[dict]:
        """Deferred emitter for one round's mechanism telemetry.

        Runs at the hub's next flush boundary (see ``Telemetry.defer``),
        in emission order, and returns the three fairness/flagging gauge
        events plus the ``fifl.round`` record. The previous-reputation
        state advances here, which is safe exactly because flushes
        preserve round order.
        """
        threshold = self.config.detection.threshold
        flagged = [w for w, ok in accepted.items() if not ok]
        flagged.sort()
        if score_vec is None:
            score_vec = np.fromiter(scores.values(), np.float64, len(scores))
        margins = score_vec - threshold
        # Reputation deltas against last round's vector; the worker set
        # is stable between failures, so the common case is one array
        # subtraction (the dict rebuild only runs on reshapes).
        ids = tuple(reputations)
        rep_vals = np.fromiter(reputations.values(), np.float64, len(ids))
        if ids == self._prev_rep_ids:
            rep_delta = rep_vals - self._prev_rep_vals
        else:
            prev = dict(zip(self._prev_rep_ids, self._prev_rep_vals))
            init = self.config.initial_reputation
            rep_delta = rep_vals - np.fromiter(
                (prev.get(w, init) for w in ids), np.float64, len(ids)
            )
        self._prev_rep_ids = ids
        self._prev_rep_vals = rep_vals
        if reward_vec is None:
            reward_vec = np.fromiter(rewards.values(), np.float64, len(rewards))
        positive = np.maximum(reward_vec, 0.0)
        reward_gini, reward_entropy = reward_fairness(positive, validate=False)
        if margins.size:
            tele.observe_many("fifl.detect_margin", margins)
        gauges = (
            ("fifl.flagged_workers", float(len(flagged))),
            ("fifl.reward_gini", reward_gini),
            ("fifl.share_entropy", reward_entropy),
        )
        tele._gauges.update(gauges)
        events = [
            {"type": "metric", "kind": "gauge", "name": name, "value": value}
            for name, value in gauges
        ]
        data = {
            "round": round_idx,
            "flagged": flagged,
            "accepted": len(accepted) - len(flagged),
            "uncertain": sorted(int(w) for w in uncertain),
            "threshold": threshold,
            "scores": scores,
            "margin_min": float(margins.min()) if margins.size else None,
            "margin_max": float(margins.max()) if margins.size else None,
            "reputation_delta": {"workers": ids, "delta": rep_delta},
            "rep_min": float(rep_vals.min()) if rep_vals.size else None,
            "rep_max": float(rep_vals.max()) if rep_vals.size else None,
            "budget": self.config.budget_per_round,
            "rewards": rewards,
            "reward_gini": reward_gini,
            "share_entropy": reward_entropy,
        }
        if self.config.audit:
            # Attribution payload: absolute reputations (deltas alone cannot
            # reconstruct state bit-exactly), contribution shares, and the
            # baseline b_h, so repro.audit rebuilds the full decision lineage
            # from the trace alone.
            data["reputations"] = reputations
            data["contributions"] = contribs
            data["shares"] = shares
            data["b_h"] = b_h
            data["initial_reputation"] = self.config.initial_reputation
        events.append({"type": "fifl.round", "data": data})
        return events

    # -- queries -----------------------------------------------------------------

    def cumulative_rewards(self) -> dict[int, float]:
        """Total rewards (negative = punishments) per worker so far."""
        return dict(self._cumulative_rewards)

    def reputation_history(self, worker: int) -> list[float]:
        """Reputation trajectory for one worker."""
        return self.reputation.history(worker)

    def recommend_servers(self, m: int, exclude: set[int] | None = None) -> list[int]:
        """Top-``m`` workers by current reputation (S4.5 re-selection).

        ``exclude`` removes candidates (e.g. crashed nodes) before
        ranking; raises RuntimeError if fewer than ``m`` remain.
        """
        if m <= 0:
            raise ValueError("m must be positive")
        reps = self.reputation.reputations()
        if exclude:
            reps = {w: r for w, r in reps.items() if w not in exclude}
        if len(reps) < m:
            raise RuntimeError(
                f"only {len(reps)} eligible workers tracked, need {m}"
            )
        ranked = sorted(reps, key=lambda w: (-reps[w], w))
        return sorted(ranked[:m])
