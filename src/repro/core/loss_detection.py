"""Exact marginal-loss detection — the costly method Eq. 5 approximates.

The paper starts from Zeno-style detection (Xie et al. [28]):

    S(θ, G_i) = L_t(θ) - L_t(θ - G_i)

computed by *inference on a validation set*, once per worker per round,
then argues a first-order Taylor expansion reduces it to the inner
product ⟨∇L_t(θ), G_i⟩ that FIFL actually uses — "more reliable and
lightweight than the previous methods which are based on inference loss".

This module implements the exact method so that claim is measurable:
``bench_ablation_loss_detection`` compares the two scores' agreement and
their cost (the exact method's N+1 forward passes vs one inner product).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..datasets import Dataset
from ..nn import SoftmaxCrossEntropy, Sequential

__all__ = ["LossBasedDetector"]


class LossBasedDetector:
    """Zeno-style detector: score by realized validation-loss reduction.

    Parameters
    ----------
    model_fn : builds a scratch model of the federation's architecture
        (the detector must probe parameters without disturbing anyone's
        live model).
    validation : the task publisher's held-out validation set.
    step : the virtual step size applied to each candidate gradient
        (the trainer's server learning rate is the natural choice).
    threshold : accept worker ``i`` iff ``S_i >= threshold``.
    """

    def __init__(
        self,
        model_fn: Callable[[], Sequential],
        validation: Dataset,
        step: float = 0.1,
        threshold: float = 0.0,
    ):
        if step <= 0:
            raise ValueError("step must be positive")
        if len(validation) == 0:
            raise ValueError("validation set is empty")
        self._model = model_fn()
        self.validation = validation
        self.step = step
        self.threshold = threshold
        self._loss_fn = SoftmaxCrossEntropy()

    def _val_loss(self, params: np.ndarray) -> float:
        self._model.set_flat_params(params)
        logits = self._model.predict(self.validation.x)
        return self._loss_fn(logits, self.validation.y)

    def score(self, theta: np.ndarray, gradient: np.ndarray) -> float:
        """Exact Eq. 5: ``L(θ) - L(θ - step·G)`` (positive = helpful)."""
        base = self._val_loss(theta)
        moved = self._val_loss(theta - self.step * np.asarray(gradient))
        return base - moved

    def detect(
        self, theta: np.ndarray, gradients: dict[int, np.ndarray]
    ) -> tuple[dict[int, float], dict[int, bool]]:
        """Score every worker's full gradient; threshold into ``r_i``.

        Cost: ``len(gradients) + 1`` full validation inferences — the
        expense the paper's first-order approximation avoids.
        """
        base = self._val_loss(theta)
        scores: dict[int, float] = {}
        for wid, grad in gradients.items():
            moved = self._val_loss(theta - self.step * np.asarray(grad))
            scores[wid] = base - moved
        accepted = {wid: s >= self.threshold for wid, s in scores.items()}
        return scores, accepted
