"""Vectorized round engine: batched data layout for the FIFL pipeline.

The scalar reference implementation walks ``dict[int, np.ndarray]``
structures worker by worker, so every phase of the per-round pipeline
(Eq. 5-15) costs a Python-level loop over workers × servers. This module
defines the batched layout the vectorized pipeline runs on:

* all delivered worker gradients stacked row-wise into one ``(N, D)``
  matrix (:class:`RoundBatch.gradients`), in ascending worker-id order;
* the per-server slice of every gradient is a *column block* of that
  matrix — because the polycentric protocol slices gradients into
  contiguous ``np.array_split`` chunks, server ``j``'s slice matrix is
  ``gradients[:, offsets[j]:offsets[j+1]]`` with offsets from the
  memoized :func:`~repro.fl.gradients.slice_offsets` table (one fancy
  index, no per-worker splitting);
* aligned ``(N,)`` vectors for worker ids and sample counts, so masked
  reductions (accepted-only aggregation, reward allocation) are single
  NumPy expressions.

Phase kernels live next to their scalar references —
:func:`~repro.core.detection.detection_scores_matrix`,
:func:`~repro.core.contribution.gradient_distances_matrix`,
:func:`~repro.core.incentive.reward_shares_array` — and
:class:`~repro.core.FIFLMechanism` orchestrates them when
``FIFLConfig.engine == "vectorized"`` (the default; ``"scalar"`` keeps
the loop-based path for differential testing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fl.gradients import slice_offsets
from ..fl.trainer import RoundContext

__all__ = ["RoundBatch", "stack_benchmarks"]


@dataclass
class RoundBatch:
    """One round's delivered gradients in batched layout."""

    worker_ids: np.ndarray  # (N,) int64, ascending
    gradients: np.ndarray  # (N, D) float64, row i = full gradient of worker_ids[i]
    offsets: np.ndarray  # (M+1,) column offsets of per-server slices
    server_ranks: np.ndarray  # (M,) int64, ascending (slice j -> server_ranks[j])
    sample_counts: np.ndarray  # (N,) float64
    _row_sqnorms: np.ndarray | None = None  # lazy ||G_i||² cache

    @classmethod
    def from_context(
        cls, ctx: RoundContext, shared: bool = False
    ) -> "RoundBatch | None":
        """Stack ``ctx.slices`` into the batched layout (None if empty).

        Workers in ``ctx.slices`` delivered a complete slice set (the
        trainer routes partial deliveries to ``ctx.uncertain`` instead),
        so each row is the worker's full gradient reassembled in server
        order — exactly ``recombine(slices)`` of the scalar path.

        ``shared=True`` places the stacked matrix in a
        ``multiprocessing`` shared-memory segment (when the platform
        allows), so worker-shard consumers in other processes can map
        the same round batch zero-copy.
        """
        ids = sorted(ctx.slices)
        if not ids:
            return None
        server_ranks = list(ctx.server_ranks)
        first = ctx.slices[ids[0]]
        dim = sum(first[srv].size for srv in server_ranks)
        offsets = slice_offsets(dim, len(server_ranks))
        if shared:
            from ..population.sharding import allocate_gradient_matrix

            gradients, _ = allocate_gradient_matrix(len(ids), dim, shared=True)
        else:
            gradients = np.empty((len(ids), dim))
        for j, srv in enumerate(server_ranks):
            block = gradients[:, offsets[j] : offsets[j + 1]]
            for i, wid in enumerate(ids):
                block[i] = ctx.slices[wid][srv]
        return cls(
            worker_ids=np.asarray(ids, dtype=np.int64),
            gradients=gradients,
            offsets=offsets,
            server_ranks=np.asarray(server_ranks, dtype=np.int64),
            sample_counts=np.asarray(
                [ctx.sample_counts[w] for w in ids], dtype=np.float64
            ),
        )

    @property
    def num_workers(self) -> int:
        return self.gradients.shape[0]

    @property
    def row_sqnorms(self) -> np.ndarray:
        """``||G_i||²`` per row, computed once and cached.

        Shared by every distance computation of the round (contribution
        scoring and the filter's second pass see the same rows).
        """
        if self._row_sqnorms is None:
            self._row_sqnorms = np.einsum(
                "ij,ij->i", self.gradients, self.gradients
            )
        return self._row_sqnorms

    def server_block(self, slot: int) -> np.ndarray:
        """Server ``slot``'s slice matrix: a column-block view, no copy."""
        return self.gradients[:, self.offsets[slot] : self.offsets[slot + 1]]

    def shard(self, start: int, stop: int) -> "RoundBatch":
        """Row window ``[start, stop)`` as a view-backed sub-batch.

        All aligned vectors are sliced views (no copies); the sqnorm
        cache, when already computed, is sliced too so shard consumers
        never recompute it.
        """
        if not 0 <= start < stop <= self.num_workers:
            raise ValueError(f"bad shard window [{start}, {stop})")
        return RoundBatch(
            worker_ids=self.worker_ids[start:stop],
            gradients=self.gradients[start:stop],
            offsets=self.offsets,
            server_ranks=self.server_ranks,
            sample_counts=self.sample_counts[start:stop],
            _row_sqnorms=(
                self._row_sqnorms[start:stop]
                if self._row_sqnorms is not None
                else None
            ),
        )

    def iter_shards(self, shard_size: int | None):
        """Stream the batch as row shards of at most ``shard_size`` workers.

        Every per-round kernel this batch feeds (detection scores,
        gradient distances, weighted aggregation) is a per-row reduction,
        so processing shard-by-shard bounds kernel temporaries by shard
        size without changing any result. ``None`` yields ``self`` once.
        """
        from ..population.sharding import iter_row_shards

        for start, stop in iter_row_shards(self.num_workers, shard_size):
            if start == 0 and stop == self.num_workers:
                yield self
            else:
                yield self.shard(start, stop)

    def mask(self, accepted: np.ndarray | dict[int, bool]) -> np.ndarray:
        """Boolean row mask from an accept verdict (array or dict form)."""
        if isinstance(accepted, dict):
            return np.asarray(
                [bool(accepted.get(int(w), False)) for w in self.worker_ids]
            )
        return np.asarray(accepted, dtype=bool)

    def weighted_average(self, keep: np.ndarray) -> np.ndarray | None:
        """Sample-count-weighted mean of the kept rows (Eq. 2 / G̃).

        Identical to the scalar path's per-server ``fedavg`` +
        ``recombine``: the weights are the same for every column block,
        so averaging whole rows commutes with slicing.
        """
        keep = np.asarray(keep, dtype=bool)
        if not keep.any():
            return None
        if keep.all():
            # All-kept fast path: one GEMV, no row copy. (Zeroed weights
            # can't stand in for dropping a row in general — a rejected
            # non-finite gradient would turn 0 * inf into NaN.)
            weights = self.sample_counts
            grads = self.gradients
        else:
            weights = self.sample_counts[keep]
            grads = self.gradients[keep]
        total = weights.sum()
        if total <= 0:
            raise ValueError("at least one kept worker needs a positive weight")
        return (weights / total) @ grads

    def to_dict(self, values: np.ndarray) -> dict[int, float]:
        """Pair an aligned result vector back onto worker ids."""
        values = np.asarray(values)
        if values.shape[0] != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} values, got {values.shape[0]}"
            )
        return {
            int(w): v.item() if isinstance(v, np.generic) else v
            for w, v in zip(self.worker_ids, values)
        }


def stack_benchmarks(
    ctx: RoundContext, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Server benchmarks ``g_j^j`` sliced straight from local updates.

    Returns ``(ranks, slots, slices)`` aligned lists: the server's worker
    id, its slice index in the sorted server list, and its own local
    slice (a view into its update — no copy, unlike the scalar path's
    ``split_gradient``). Servers whose local update is missing (crashed
    nodes) are skipped, matching the scalar ``_benchmarks``.
    """
    ranks: list[int] = []
    slots: list[int] = []
    slices: list[np.ndarray] = []
    for j, srv in enumerate(ctx.server_ranks):
        upd = ctx.updates.get(srv)
        if upd is None:
            continue
        grad = np.asarray(upd.gradient, dtype=np.float64)
        ranks.append(srv)
        slots.append(j)
        slices.append(grad[offsets[j] : offsets[j + 1]])
    if not ranks:
        raise RuntimeError("no server produced a local gradient; cannot detect")
    return (
        np.asarray(ranks, dtype=np.int64),
        np.asarray(slots, dtype=np.intp),
        slices,
    )
