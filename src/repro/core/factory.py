"""Mechanism factory: every round mechanism behind one construction API.

Drivers, examples, and ablation benches historically each hand-rolled
their mechanism construction (``FIFLMechanism(FIFLConfig(
detection=DetectionConfig(...), ...))``, ``KrumMechanism(1)``, ...).
This module gives each mechanism a keyword-consistent config dataclass
and one entry point:

    make_mechanism("fifl", threshold=0.1, gamma=0.3)
    make_mechanism("krum", num_byzantine=2)
    make_mechanism("median", keep_fraction=0.6)
    make_mechanism("accept_all")          # the undefended baseline

FIFL's nested ``DetectionConfig`` is flattened: ``threshold`` and
``mode`` route into the detection sub-config, every other keyword into
:class:`~repro.core.fifl.FIFLConfig` — so callers never juggle two
config objects. Passing a ready-made config object via ``config=`` skips
the keyword mapping entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from ..fl.trainer import RoundContext, RoundDecision
from .detection import DetectionConfig
from .fifl import FIFLConfig, FIFLMechanism
from .robust import KrumMechanism, MedianMechanism

__all__ = [
    "AcceptAllConfig",
    "AcceptAllMechanism",
    "KrumConfig",
    "MedianConfig",
    "MECHANISM_NAMES",
    "make_mechanism",
]


@dataclass(frozen=True)
class AcceptAllConfig:
    """The undefended baseline has nothing to configure."""


class AcceptAllMechanism:
    """Accept every delivered update — Figures 7, 8, 10's no-defence arm."""

    def __init__(self, config: AcceptAllConfig | None = None):
        self.config = config if config is not None else AcceptAllConfig()

    def process_round(self, ctx: RoundContext) -> RoundDecision:
        return RoundDecision(accept={w: True for w in ctx.slices})


@dataclass(frozen=True)
class KrumConfig:
    """Krum comparator settings (assumed Byzantine count ``f``)."""

    num_byzantine: int = 1

    def __post_init__(self) -> None:
        if self.num_byzantine < 0:
            raise ValueError("num_byzantine must be non-negative")


@dataclass(frozen=True)
class MedianConfig:
    """Median-filtering comparator settings."""

    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")


_DETECTION_FIELDS = {f.name for f in fields(DetectionConfig)}
_FIFL_FIELDS = {f.name for f in fields(FIFLConfig)}


def _make_fifl_config(overrides: dict) -> FIFLConfig:
    """Flat keywords -> nested FIFLConfig (+DetectionConfig)."""
    detection_kw = {
        k: overrides.pop(k) for k in list(overrides) if k in _DETECTION_FIELDS
    }
    unknown = set(overrides) - _FIFL_FIELDS
    if unknown:
        raise TypeError(
            f"unknown FIFL config keywords: {sorted(unknown)}; "
            f"valid: {sorted((_FIFL_FIELDS | _DETECTION_FIELDS) - {'detection'})}"
        )
    detection = overrides.pop("detection", None)
    if detection is None:
        detection = DetectionConfig(**detection_kw)
    elif detection_kw:
        detection = replace(detection, **detection_kw)
    return FIFLConfig(detection=detection, **overrides)


def _build_fifl(overrides: dict, ledger) -> FIFLMechanism:
    return _build_fifl_variant(overrides, ledger)


def _build_fifl_variant(overrides: dict, ledger, **preset) -> FIFLMechanism:
    merged = {**preset, **overrides}
    return FIFLMechanism(_make_fifl_config(merged), ledger=ledger)


def _build_simple(mechanism_cls, config_cls):
    def build(overrides: dict, ledger) -> object:
        cfg = overrides.pop("config", None)
        if cfg is None:
            cfg = config_cls(**overrides)
        elif overrides:
            cfg = replace(cfg, **overrides)
        kwargs = {
            f.name: getattr(cfg, f.name) for f in fields(cfg)
        }
        return mechanism_cls(**kwargs) if kwargs else mechanism_cls()

    return build


#: name -> builder(overrides, ledger). The FIFL ablations are presets of
#: the same config (reputation estimator / detection-score mode).
_BUILDERS = {
    "fifl": _build_fifl,
    "fifl-slm": lambda ov, led: _build_fifl_variant(ov, led, reputation_mode="slm"),
    "fifl-raw": lambda ov, led: _build_fifl_variant(ov, led, mode="raw"),
    "fifl-scalar": lambda ov, led: _build_fifl_variant(ov, led, engine="scalar"),
    "krum": _build_simple(KrumMechanism, KrumConfig),
    "median": _build_simple(MedianMechanism, MedianConfig),
    "accept_all": lambda ov, led: AcceptAllMechanism(
        ov.pop("config", None) or (AcceptAllConfig(**ov))
    ),
    "none": lambda ov, led: AcceptAllMechanism(
        ov.pop("config", None) or (AcceptAllConfig(**ov))
    ),
}

#: Public mechanism names, in a stable order for CLIs and benches.
MECHANISM_NAMES = tuple(_BUILDERS)


def make_mechanism(name: str, *, ledger=None, **overrides):
    """Construct any round mechanism by name with flat keyword overrides.

    ``config=<dataclass>`` passes a pre-built config (remaining keywords
    are applied on top of it via ``dataclasses.replace`` for the simple
    mechanisms, or merged into the nested config for FIFL). ``ledger``
    is forwarded to mechanisms that support audit logging.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown mechanism {name!r}; available: {', '.join(MECHANISM_NAMES)}"
        )
    if name.startswith("fifl"):
        cfg = overrides.pop("config", None)
        if cfg is not None:
            if overrides:
                raise TypeError(
                    "pass either config= or flat keywords for FIFL, not both"
                )
            return FIFLMechanism(cfg, ledger=ledger)
        return builder(dict(overrides), ledger)
    if ledger is not None:
        raise TypeError(f"mechanism {name!r} does not take a ledger")
    return builder(dict(overrides), ledger)
