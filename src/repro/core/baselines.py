"""Baseline incentive mechanisms (paper S5.1, Eq. 18-22).

Every baseline maps per-worker *claimed* sample counts to reward weights
``ω_i``; worker ``i``'s reward is ``ω_i / Σω_j · I_sum`` (Eq. 18). The
utility function throughout is ``Ψ(n) = log(1 + n)``.

* Individual (Eq. 19): ``ω_i = Ψ(n_i)`` — independent-training utility.
* Equal (Eq. 20): ``ω_i = 1/N`` — the egalitarian payoff.
* Union (Eq. 21): ``ω_i = Ψ(A) - Ψ(A \\ {i})`` — marginal utility.
* Shapley (Eq. 22): average marginal utility over all join orders.

Shapley values are exact where tractable: because Ψ only depends on the
*sum* of samples in a coalition, a subset-sum dynamic program computes
exact values for any N with integer sample counts
(:func:`shapley_sum_dp`). For general utility functions there is exact
enumeration for small N and a permutation-sampling estimator otherwise.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable

import numpy as np

__all__ = [
    "individual_weights",
    "equal_weights",
    "union_weights",
    "shapley_weights",
    "shapley_sum_dp",
    "shapley_enumeration",
    "shapley_montecarlo",
    "BASELINE_WEIGHTS",
]


def _check_samples(samples: np.ndarray) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("samples must be a non-empty 1-D vector")
    if (samples < 0).any():
        raise ValueError("sample counts must be non-negative")
    return samples


def _psi(n):
    return np.log1p(n)


def individual_weights(samples: np.ndarray) -> np.ndarray:
    """Eq. 19: ``ω_i = Ψ(n_i)``."""
    return _psi(_check_samples(samples))


def equal_weights(num_workers: int) -> np.ndarray:
    """Eq. 20: ``ω_i = 1/N``."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    return np.full(num_workers, 1.0 / num_workers)


def union_weights(samples: np.ndarray) -> np.ndarray:
    """Eq. 21: ``ω_i = Ψ(A) - Ψ(A \\ {i})`` (vectorized over workers)."""
    samples = _check_samples(samples)
    total = samples.sum()
    return _psi(total) - _psi(total - samples)


# -- Shapley value -----------------------------------------------------------


def shapley_sum_dp(samples: np.ndarray) -> np.ndarray:
    """Exact Shapley values for the sum-utility ``Ψ(Σ n)`` via subset-sum DP.

    ``count[k][s]`` counts the subsets of the *other* workers with size
    ``k`` and sample-sum ``s``; the Shapley value is then

        φ_i = Σ_k  (k! (N-1-k)! / N!) Σ_s count[k][s] (Ψ(s + n_i) - Ψ(s)).

    Counts are integers below C(19,9) for the paper's N = 20, exact in
    float64. Removing worker ``i`` from the all-workers DP uses the
    standard deconvolution ``without[k][s] = all[k][s] - without[k-1][s - n_i]``,
    also exact in integer arithmetic.
    """
    samples = _check_samples(samples)
    if not np.allclose(samples, np.round(samples)):
        raise ValueError("subset-sum DP needs integer sample counts")
    n_int = samples.astype(np.int64)
    n = n_int.size
    total = int(n_int.sum())

    # DP over all workers: counts[k, s]
    counts = np.zeros((n + 1, total + 1))
    counts[0, 0] = 1.0
    for ni in n_int:
        # iterate sizes downward so each worker is used at most once
        if ni == 0:
            counts[1:, :] += counts[:-1, :]
        else:
            counts[1:, ni:] += counts[:-1, :-ni]

    psi_table = _psi(np.arange(total + 1, dtype=np.float64))
    phis = np.empty(n)
    for i, ni in enumerate(n_int):
        # Deconvolve worker i out of the DP.
        without = np.zeros((n, total + 1))
        without[0] = counts[0, : total + 1]
        for k in range(1, n):
            if ni == 0:
                without[k] = counts[k] - without[k - 1]
            else:
                shifted = np.zeros(total + 1)
                shifted[ni:] = without[k - 1, :-ni]
                without[k] = counts[k] - shifted
        # Marginal gains by coalition size.
        gain = np.zeros(total + 1)
        gain[: total + 1 - ni] = (
            psi_table[ni : total + 1] - psi_table[: total + 1 - ni]
        ) if ni > 0 else 0.0
        phi = 0.0
        for k in range(n):
            weight = 1.0 / (n * comb(n - 1, k))
            phi += weight * float(without[k] @ gain)
        phis[i] = phi
    return phis


def shapley_enumeration(
    samples: np.ndarray, utility_fn: Callable[[float], float] | None = None
) -> np.ndarray:
    """Exact Shapley by enumerating subsets; O(2^N), for N <= 15."""
    samples = _check_samples(samples)
    n = samples.size
    if n > 15:
        raise ValueError("enumeration is limited to N <= 15 workers")
    psi = utility_fn if utility_fn is not None else (lambda s: float(_psi(s)))
    phis = np.zeros(n)
    others = list(range(n))
    for i in range(n):
        rest = [j for j in others if j != i]
        for k in range(n):
            weight = 1.0 / (n * comb(n - 1, k))
            for subset in combinations(rest, k):
                s = samples[list(subset)].sum() if subset else 0.0
                phis[i] += weight * (psi(s + samples[i]) - psi(s))
    return phis


def shapley_montecarlo(
    samples: np.ndarray,
    utility_fn: Callable[[float], float] | None = None,
    n_permutations: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Unbiased Shapley estimate by sampling join orders."""
    samples = _check_samples(samples)
    if n_permutations <= 0:
        raise ValueError("n_permutations must be positive")
    psi = utility_fn if utility_fn is not None else (lambda s: float(_psi(s)))
    n = samples.size
    rng = np.random.default_rng(seed)
    phis = np.zeros(n)
    for _ in range(n_permutations):
        order = rng.permutation(n)
        running = 0.0
        before = psi(0.0)
        for j in order:
            running += samples[j]
            after = psi(running)
            phis[j] += after - before
            before = after
    return phis / n_permutations


def shapley_weights(
    samples: np.ndarray,
    method: str = "auto",
    n_permutations: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Eq. 22 weights, dispatching to the best available exact method.

    ``auto`` uses the subset-sum DP when counts are integers (exact for
    any N), exact enumeration for small non-integer problems, and Monte
    Carlo otherwise.
    """
    samples = _check_samples(samples)
    if method == "auto":
        if np.allclose(samples, np.round(samples)):
            return shapley_sum_dp(samples)
        if samples.size <= 12:
            return shapley_enumeration(samples)
        return shapley_montecarlo(samples, n_permutations=n_permutations, seed=seed)
    if method == "dp":
        return shapley_sum_dp(samples)
    if method == "enum":
        return shapley_enumeration(samples)
    if method == "montecarlo":
        return shapley_montecarlo(samples, n_permutations=n_permutations, seed=seed)
    raise ValueError(f"unknown method {method!r}")


#: Registry used by the market simulator: name -> samples-to-weights map.
BASELINE_WEIGHTS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "individual": individual_weights,
    "equal": lambda samples: equal_weights(len(samples)),
    "union": union_weights,
    "shapley": shapley_weights,
}
