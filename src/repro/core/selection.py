"""Server-cluster selection (paper S4.5).

Before training, the task publisher runs a short probe: every candidate
trains alone for a few iterations and is evaluated on a validation set;
the most accurate devices form the initial server cluster. During
training, the cluster is re-selected from the highest-reputation workers
at the end of each iteration (here: whenever the caller asks).
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from ..fl.evaluation import accuracy
from ..fl.workers import Worker

__all__ = ["probe_selection", "reputation_selection"]


def probe_selection(
    workers: list[Worker],
    validation: Dataset,
    num_servers: int,
    probe_rounds: int = 3,
) -> list[int]:
    """Initial server selection by short-probe validation accuracy.

    Each worker trains ``probe_rounds`` local rounds from its own model's
    current parameters; the publisher measures validation accuracy and
    picks the top ``num_servers`` (ties broken by worker id for
    determinism). Workers' models are restored afterwards so the probe
    does not leak into training.
    """
    if num_servers <= 0 or num_servers > len(workers):
        raise ValueError(
            f"num_servers must be in [1, {len(workers)}], got {num_servers}"
        )
    if probe_rounds <= 0:
        raise ValueError("probe_rounds must be positive")
    scores: list[tuple[float, int]] = []
    for w in workers:
        saved = w.model.get_flat_params()
        theta = saved
        for _ in range(probe_rounds):
            upd = w.compute_update(theta)
            theta = theta - w.lr * upd.gradient
        w.model.set_flat_params(theta)
        acc = accuracy(w.model, validation)
        scores.append((acc, w.worker_id))
        w.model.set_flat_params(saved)
    # highest accuracy first; lowest id wins ties
    scores.sort(key=lambda t: (-t[0], t[1]))
    return sorted(wid for _, wid in scores[:num_servers])


def reputation_selection(
    reputations: dict[int, float], num_servers: int
) -> list[int]:
    """Re-select the server cluster: top reputations (S4.5)."""
    if num_servers <= 0:
        raise ValueError("num_servers must be positive")
    if len(reputations) < num_servers:
        raise ValueError(
            f"only {len(reputations)} workers tracked, need {num_servers}"
        )
    ranked = sorted(reputations, key=lambda w: (-reputations[w], w))
    return sorted(ranked[:num_servers])
