"""Attack detection module (paper S4.1).

Each server ``j`` scores worker ``i``'s gradient slice against a benchmark
slice — the server's *own* local gradient slice ``g_j^j`` (servers are
workers too, S3.2) — and the global detection score sums the per-server
scores (Eq. 6):

    S_i = sum_j S_i^j,   S_i^j = <g_j^j, g_i^j>.

The score is a first-order Taylor estimate of the loss reduction worker
``i``'s gradient would produce (Eq. 5 -> <G, G_i>), so honest gradients
score positive and sign-flipped/garbage gradients score negative or tiny.
Workers with ``S_i < S_y`` are flagged Byzantine and excluded (Eq. 7).

Two score modes are provided (DESIGN.md ablation #1):

* ``"raw"`` — the literal inner product of Eq. 6. Its scale grows with
  model size and gradient magnitude, so S_y must be re-tuned per task.
* ``"cosine"`` — inner product normalized by both norms, giving a
  scale-free score in [-1, 1]; the paper's quoted thresholds
  (S_y ≈ 0.09–0.15) are only meaningful on such a normalized scale, so
  this is the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DetectionConfig",
    "server_score",
    "detection_scores",
    "detection_scores_matrix",
    "classify",
    "classify_array",
    "AttackDetector",
]

_MODES = ("raw", "cosine")


@dataclass(frozen=True)
class DetectionConfig:
    """Detection hyperparameters: threshold ``S_y`` and score mode."""

    threshold: float = 0.0
    mode: str = "cosine"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")


def server_score(
    benchmark: np.ndarray, candidate: np.ndarray, mode: str = "cosine"
) -> float:
    """One server's detection score ``S_i^j`` for a worker slice (Eq. 6)."""
    benchmark = np.asarray(benchmark, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if benchmark.shape != candidate.shape:
        raise ValueError(
            f"slice shapes differ: {benchmark.shape} vs {candidate.shape}"
        )
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    inner = float(benchmark @ candidate)
    if mode == "raw":
        return inner
    denom = float(np.linalg.norm(benchmark) * np.linalg.norm(candidate))
    if denom == 0.0:
        # A zero slice carries no direction; it is neither aligned nor
        # opposed to the benchmark.
        return 0.0
    return inner / denom


def detection_scores(
    slices: dict[int, dict[int, np.ndarray]],
    benchmarks: dict[int, np.ndarray],
    mode: str = "cosine",
) -> dict[int, float]:
    """Global scores ``S_i = sum_j S_i^j`` for every worker (Eq. 6).

    Parameters
    ----------
    slices : ``worker_id -> {server_rank: slice}`` as delivered this round.
    benchmarks : ``server_rank -> benchmark slice`` (the server's own
        local gradient slice ``g_j^j``).
    mode : score mode; in ``"cosine"`` mode the per-server scores are
        averaged instead of summed so the global score stays in [-1, 1]
        regardless of the number of servers.
    """
    if not benchmarks:
        raise ValueError("need at least one server benchmark")
    scores: dict[int, float] = {}
    m = len(benchmarks)
    for wid, parts in slices.items():
        total = 0.0
        counted = 0
        for srv, bench in benchmarks.items():
            if srv not in parts:
                continue
            if srv == wid and m > 1:
                # A server never scores itself: its benchmark *is* its own
                # slice (cosine exactly 1), which would let a malicious
                # server vote itself honest. Peer servers score it instead;
                # only the degenerate single-server case keeps self-scoring
                # (the paper's M = 1 centralized setup trusts that server).
                continue
            total += server_score(bench, parts[srv], mode)
            counted += 1
        if counted == 0:
            raise ValueError(f"worker {wid} delivered no slices to any server")
        if mode == "cosine":
            scores[wid] = total / counted
        else:
            # Raw scores over missing slices cannot be imputed; scale up
            # so partial delivery is comparable to full delivery.
            scores[wid] = total * (m / counted)
    return scores


def detection_scores_matrix(
    worker_ids: np.ndarray,
    gradients: np.ndarray,
    offsets: np.ndarray,
    benchmark_ranks: np.ndarray,
    benchmark_slots: np.ndarray,
    benchmarks: list[np.ndarray],
    mode: str = "cosine",
) -> np.ndarray:
    """Batched Eq. 6: all workers' global scores in one GEMM per server.

    The vectorized counterpart of :func:`detection_scores` for the round
    engine's data layout: worker gradients stacked row-wise into an
    ``(N, D)`` matrix whose column block ``offsets[j]:offsets[j+1]`` is
    the slice held by server ``j``. Per server the N inner products are
    one matrix-vector product; cosine mode divides by row and benchmark
    norms computed via a single ``einsum`` per block.

    Parameters
    ----------
    worker_ids : ``(N,)`` worker id per row (for self-scoring exclusion).
    gradients : ``(N, D)`` full gradient per delivered worker.
    offsets : ``(M+1,)`` column offsets of the per-server slices.
    benchmark_ranks : worker id of each scoring server.
    benchmark_slots : slice index ``j`` of each scoring server (its
        position in the sorted server list, selecting the column block).
    benchmarks : the servers' own local slices ``g_j^j``, aligned with
        ``benchmark_ranks``.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    n = gradients.shape[0]
    m = len(benchmarks)
    if m == 0:
        raise ValueError("need at least one server benchmark")
    totals = np.zeros(n)
    counted = np.full(n, m, dtype=np.float64)
    for rank, slot, bench in zip(benchmark_ranks, benchmark_slots, benchmarks):
        block = gradients[:, offsets[slot] : offsets[slot + 1]]
        inner = block @ bench
        if mode == "cosine":
            denom = np.sqrt(np.einsum("ij,ij->i", block, block)) * float(
                np.linalg.norm(bench)
            )
            scores_j = np.divide(
                inner, denom, out=np.zeros(n), where=denom > 0.0
            )
        else:
            scores_j = inner
        if m > 1:
            # A server never scores itself (see detection_scores).
            self_rows = worker_ids == rank
            scores_j = np.where(self_rows, 0.0, scores_j)
            counted -= self_rows
        totals += scores_j
    if (counted == 0).any():
        bad = worker_ids[counted == 0].tolist()
        raise ValueError(f"workers {bad} scored by no server")
    if mode == "cosine":
        return totals / counted
    return totals * (m / counted)


def classify(scores: dict[int, float], threshold: float) -> dict[int, bool]:
    """Eq. 7: ``r_i = 1`` (honest) iff ``S_i >= S_y``."""
    return {wid: s >= threshold for wid, s in scores.items()}


def classify_array(scores: np.ndarray, threshold: float) -> np.ndarray:
    """Eq. 7 on a score vector: boolean mask ``S_i >= S_y``."""
    return np.asarray(scores, dtype=np.float64) >= threshold


class AttackDetector:
    """Stateless detector bundling scoring + thresholding for one config."""

    def __init__(self, config: DetectionConfig | None = None):
        self.config = config if config is not None else DetectionConfig()

    def detect(
        self,
        slices: dict[int, dict[int, np.ndarray]],
        benchmarks: dict[int, np.ndarray],
    ) -> tuple[dict[int, float], dict[int, bool]]:
        """Return ``(scores, r)`` for the delivered slices."""
        scores = detection_scores(slices, benchmarks, self.config.mode)
        return scores, classify(scores, self.config.threshold)
